//! Blocks, block collections and the [`Blocker`] trait.
//!
//! Section 3 of the paper defines the blocking problem through the *blocking
//! function* θ_B(r1, r2), which returns 1 when at least one block of B
//! contains both records. [`BlockCollection`] materialises B and exposes the
//! quantities the evaluation measures need: the set Γ of distinct candidate
//! pairs, the redundant pair count Γ_m, and θ_B itself.

use std::collections::HashMap;

use sablock_datasets::record::RecordPair;
use sablock_datasets::{Dataset, RecordId};
use sablock_textual::hashing::StableHashSet;

use crate::error::Result;
use crate::parallel::{default_threads, parallel_map};

/// How many blocks one shard of the pair-enumeration covers. Shards are
/// enumerated and sorted independently (in parallel for large collections)
/// and then combined by a sorted merge.
const PAIR_SHARD_BLOCKS: usize = 256;

/// Enumerates, sorts and dedups the pairs of a slice of blocks — one sorted
/// run of the shard-then-merge pair enumeration.
fn sorted_pair_run(blocks: &[Block]) -> Vec<RecordPair> {
    let mut pairs: Vec<RecordPair> = blocks.iter().flat_map(Block::pairs).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Merges two sorted, deduplicated runs into one, dropping duplicates that
/// appear in both (the classic sorted-merge of merge sort, with set union
/// semantics).
fn merge_sorted_dedup(a: Vec<RecordPair>, b: Vec<RecordPair>) -> Vec<RecordPair> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => out.push(ia.next().expect("peeked")),
                std::cmp::Ordering::Greater => out.push(ib.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    out.push(ia.next().expect("peeked"));
                    ib.next();
                }
            },
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, _) => {
                out.extend(ib);
                break;
            }
        }
    }
    out
}

/// A single block: a bucket key plus the records hashed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    key: String,
    members: Vec<RecordId>,
}

impl Block {
    /// Creates a block. Duplicate member ids are removed, preserving order.
    pub fn new(key: impl Into<String>, mut members: Vec<RecordId>) -> Self {
        let mut seen = StableHashSet::default();
        members.retain(|id| seen.insert(*id));
        Self { key: key.into(), members }
    }

    /// The bucket key that produced this block.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The member record ids.
    pub fn members(&self) -> &[RecordId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of (unordered) record pairs the block contributes, counting
    /// redundancy across blocks: `|b|·(|b|−1)/2`.
    pub fn pair_count(&self) -> u64 {
        let n = self.members.len() as u64;
        n * n.saturating_sub(1) / 2
    }

    /// Iterates over the distinct pairs within this block.
    pub fn pairs(&self) -> impl Iterator<Item = RecordPair> + '_ {
        self.members.iter().enumerate().flat_map(move |(i, &a)| {
            self.members[i + 1..]
                .iter()
                .filter_map(move |&b| RecordPair::new(a, b))
        })
    }
}

/// The output of a blocking technique: a set of (possibly overlapping) blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockCollection {
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection from blocks, dropping blocks with fewer than two
    /// members (they can never contribute a candidate pair).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        let blocks = blocks.into_iter().filter(|b| b.len() >= 2).collect();
        Self { blocks }
    }

    /// Builds a collection from a map of bucket key → member records,
    /// which is the natural output shape of key-based blocking techniques.
    pub fn from_key_map<K: std::fmt::Display>(map: HashMap<K, Vec<RecordId>>) -> Self {
        let mut blocks: Vec<Block> = map
            .into_iter()
            .map(|(key, members)| Block::new(key.to_string(), members))
            .filter(|b| b.len() >= 2)
            .collect();
        // Deterministic order regardless of hash-map iteration order.
        blocks.sort_by(|a, b| a.key().cmp(b.key()));
        Self { blocks }
    }

    /// Adds a block (ignored if it has fewer than two members).
    pub fn push(&mut self, block: Block) {
        if block.len() >= 2 {
            self.blocks.push(block);
        }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Size of the largest block (0 when empty).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(Block::len).max().unwrap_or(0)
    }

    /// Mean block size (0 when empty).
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(Block::len).sum::<usize>() as f64 / self.blocks.len() as f64
    }

    /// Total number of pairs counted *with* redundancy across blocks — the
    /// quantity `|Γ_m| = Σ_b |b|·(|b|−1)/2` used by the PQ* measure.
    pub fn redundant_pair_count(&self) -> u64 {
        self.blocks.iter().map(Block::pair_count).sum()
    }

    /// The set Γ of *distinct* candidate pairs across all blocks, returned as
    /// a vector sorted in ascending [`RecordPair`] order.
    ///
    /// Enumeration is sort-dedup based rather than hash-set based: blocks are
    /// split into shards, each shard's pairs are enumerated, sorted and
    /// deduplicated independently (in parallel for large collections), and the
    /// sorted runs are combined by a duplicate-dropping sorted merge. This
    /// keeps bulk evaluation cache-friendly and allocation-light on
    /// paper-scale block collections, and the output order is deterministic
    /// regardless of thread count.
    pub fn distinct_pairs(&self) -> Vec<RecordPair> {
        let mut runs: Vec<Vec<RecordPair>> = if self.blocks.len() > PAIR_SHARD_BLOCKS {
            let shards: Vec<&[Block]> = self.blocks.chunks(PAIR_SHARD_BLOCKS).collect();
            parallel_map(&shards, default_threads(), |shard| sorted_pair_run(shard))
        } else {
            vec![sorted_pair_run(&self.blocks)]
        };
        // Balanced binary sorted-merge of the runs.
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(merge_sorted_dedup(a, b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    }

    /// Number of distinct candidate pairs `|Γ|`.
    pub fn num_distinct_pairs(&self) -> u64 {
        self.distinct_pairs().len() as u64
    }

    /// The blocking function θ_B: do the two records share at least one block?
    ///
    /// This scans blocks and is intended for point queries (examples, tests);
    /// bulk evaluation goes through [`BlockCollection::distinct_pairs`].
    pub fn theta(&self, a: RecordId, b: RecordId) -> bool {
        if a == b {
            return false;
        }
        self.blocks
            .iter()
            .any(|blk| blk.members().contains(&a) && blk.members().contains(&b))
    }

    /// Per-record block membership: record → indices of blocks containing it.
    /// Needed by meta-blocking to build the blocking graph.
    pub fn membership(&self) -> HashMap<RecordId, Vec<usize>> {
        let mut map: HashMap<RecordId, Vec<usize>> = HashMap::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            for &member in block.members() {
                map.entry(member).or_default().push(idx);
            }
        }
        map
    }
}

/// A blocking technique: maps a dataset to a collection of blocks.
///
/// Implemented by the SA-LSH blocker of this crate and by every baseline in
/// `sablock-baselines`, so the evaluation harness can treat them uniformly.
pub trait Blocker {
    /// A short human-readable name used in reports (e.g. `"SA-LSH"`).
    fn name(&self) -> String;

    /// Produces blocks for the dataset.
    fn block(&self, dataset: &Dataset) -> Result<BlockCollection>;
}

impl<B: Blocker + ?Sized> Blocker for Box<B> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        (**self).block(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn block_deduplicates_members_and_counts_pairs() {
        let b = Block::new("k1", vec![rid(1), rid(2), rid(1), rid(3)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.pair_count(), 3);
        assert_eq!(b.pairs().count(), 3);
        assert_eq!(b.key(), "k1");
        assert!(!b.is_empty());
    }

    #[test]
    fn singleton_and_empty_blocks_are_dropped() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(1)]),
            Block::new("b", vec![]),
            Block::new("c", vec![rid(1), rid(2)]),
        ]);
        assert_eq!(collection.num_blocks(), 1);
        let mut collection = BlockCollection::new();
        collection.push(Block::new("solo", vec![rid(9)]));
        assert!(collection.is_empty());
    }

    #[test]
    fn distinct_vs_redundant_pairs() {
        // Two overlapping blocks: {1,2,3} and {2,3,4} share the pair (2,3).
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3)]),
            Block::new("b2", vec![rid(2), rid(3), rid(4)]),
        ]);
        assert_eq!(collection.redundant_pair_count(), 6);
        assert_eq!(collection.num_distinct_pairs(), 5);
        assert!(collection.theta(rid(2), rid(3)));
        assert!(collection.theta(rid(1), rid(3)));
        assert!(!collection.theta(rid(1), rid(4)));
        assert!(!collection.theta(rid(1), rid(1)));
    }

    #[test]
    fn paper_example_block_counts() {
        // Fig. 1: B3 = {{r1,r2,r6}, {r4,r6}, {r3}, {r5}} has 4 distinct pairs;
        // B1 = {{r1,r2,r4,r6}, {r3}, {r5}} has 6; B2 = {{r1,r2,r3,r6}, {r4,r5,r6}} has 9.
        let b1 = BlockCollection::from_blocks(vec![Block::new("x", vec![rid(1), rid(2), rid(4), rid(6)])]);
        assert_eq!(b1.num_distinct_pairs(), 6);
        let b2 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(3), rid(6)]),
            Block::new("y", vec![rid(4), rid(5), rid(6)]),
        ]);
        assert_eq!(b2.num_distinct_pairs(), 9);
        let b3 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(6)]),
            Block::new("y", vec![rid(4), rid(6)]),
        ]);
        assert_eq!(b3.num_distinct_pairs(), 4);
    }

    #[test]
    fn key_map_construction_is_deterministic() {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        map.insert("z".into(), vec![rid(1), rid(2)]);
        map.insert("a".into(), vec![rid(3), rid(4)]);
        map.insert("solo".into(), vec![rid(5)]);
        let collection = BlockCollection::from_key_map(map);
        assert_eq!(collection.num_blocks(), 2);
        assert_eq!(collection.blocks()[0].key(), "a");
        assert_eq!(collection.blocks()[1].key(), "z");
    }

    #[test]
    fn size_statistics() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3), rid(4)]),
            Block::new("b2", vec![rid(5), rid(6)]),
        ]);
        assert_eq!(collection.max_block_size(), 4);
        assert!((collection.mean_block_size() - 3.0).abs() < 1e-12);
        let empty = BlockCollection::new();
        assert_eq!(empty.max_block_size(), 0);
        assert_eq!(empty.mean_block_size(), 0.0);
    }

    #[test]
    fn distinct_pairs_are_sorted_and_deduplicated() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(3), rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(1)]),
            Block::new("b3", vec![rid(9), rid(1)]),
        ]);
        let pairs = collection.distinct_pairs();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted strictly ascending (deduped)");
        assert_eq!(pairs.len() as u64, collection.num_distinct_pairs());
        // (1,2) appears in two blocks but only once in Γ.
        let p12 = RecordPair::new(rid(1), rid(2)).unwrap();
        assert_eq!(pairs.iter().filter(|&&p| p == p12).count(), 1);
    }

    #[test]
    fn sharded_enumeration_matches_single_run() {
        // More blocks than one shard (PAIR_SHARD_BLOCKS) with heavy overlap:
        // the sharded, merged enumeration must equal a single sort-dedup pass.
        let blocks: Vec<Block> = (0..(PAIR_SHARD_BLOCKS * 2 + 7))
            .map(|i| {
                let base = (i % 13) as u32;
                Block::new(format!("b{i}"), vec![rid(base), rid(base + 1), rid(base + 2)])
            })
            .collect();
        let collection = BlockCollection::from_blocks(blocks);
        let reference = sorted_pair_run(collection.blocks());
        assert_eq!(collection.distinct_pairs(), reference);
    }

    #[test]
    fn merge_sorted_dedup_unions_runs() {
        let pair = |a: u32, b: u32| RecordPair::new(rid(a), rid(b)).unwrap();
        let a = vec![pair(0, 1), pair(1, 2), pair(5, 6)];
        let b = vec![pair(0, 2), pair(1, 2), pair(7, 8)];
        let merged = merge_sorted_dedup(a, b);
        assert_eq!(merged, vec![pair(0, 1), pair(0, 2), pair(1, 2), pair(5, 6), pair(7, 8)]);
        assert_eq!(merge_sorted_dedup(vec![], vec![pair(2, 3)]), vec![pair(2, 3)]);
        assert!(merge_sorted_dedup(vec![], vec![]).is_empty());
    }

    #[test]
    fn membership_maps_records_to_blocks() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(3)]),
        ]);
        let membership = collection.membership();
        assert_eq!(membership[&rid(2)], vec![0, 1]);
        assert_eq!(membership[&rid(1)], vec![0]);
        assert!(!membership.contains_key(&rid(9)));
    }
}
