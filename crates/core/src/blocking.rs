//! Blocks, block collections and the [`Blocker`] trait.
//!
//! Section 3 of the paper defines the blocking problem through the *blocking
//! function* θ_B(r1, r2), which returns 1 when at least one block of B
//! contains both records. [`BlockCollection`] materialises B and exposes the
//! quantities the evaluation measures need: the set Γ of distinct candidate
//! pairs, the redundant pair count Γ_m, and θ_B itself.
//!
//! # The packed pair representation
//!
//! Every bulk pair path — enumeration, deduplication and the streaming
//! Γ counter — operates on *packed* pair keys ([`RecordPair::pack`]): the
//! smaller record id in the high 32 bits of a `u64`, the larger in the low
//! 32. Packed keys order exactly like [`RecordPair`]s, so sorted runs are
//! plain `Vec<u64>`, run construction is an LSB radix sort
//! ([`radix_sort_packed`]), and every comparison of the k-way merge is a
//! single integer compare. The merge itself is a flat loser (tournament)
//! tree with a galloping fast path ([`merge_count_packed_runs`]): one
//! path-to-root update per *segment* of pairs instead of a heap pop + push
//! per redundant pair.

use std::collections::HashMap;

use sablock_datasets::ground_truth::EntityId;
use sablock_datasets::record::RecordPair;
use sablock_datasets::{Dataset, RecordId};
use sablock_textual::hashing::StableHashSet;

use crate::error::{CoreError, Result};
use crate::parallel::{default_threads, parallel_map};

pub use sablock_datasets::record::MAX_RECORD_ID;

/// How many blocks one shard of the pair-enumeration covers. Shards are
/// enumerated and sorted independently (in parallel for large collections)
/// and then combined by the loser-tree merge.
const PAIR_SHARD_BLOCKS: usize = 256;

/// Target number of (redundant) pairs per pair-space slice of the streaming
/// counter. Collections whose redundant pair count stays below this are
/// counted in a single slice; larger ones are split so that only
/// `threads × slice` pairs are ever resident at once.
const STREAM_SLICE_TARGET_PAIRS: u64 = 32_000_000;

/// Upper bound on the number of pair-space slices of the streaming counter.
/// Every slice re-scans the block headers (cheap), so an excessive slice
/// count would trade memory nobody needs saved for wasted scans.
const MAX_STREAM_SLICES: usize = 64;

/// Below this length the scatter passes of the radix sort cost more than a
/// comparison sort's cache locality buys back, so short runs fall through to
/// `sort_unstable`.
const RADIX_SORT_MIN: usize = 1 << 10;

/// Sorts packed pair keys with an LSB radix sort: one histogram pre-scan
/// over all eight byte digits, then one counting-scatter pass per digit that
/// actually varies (a digit whose value is shared by every key — common when
/// record ids span far fewer than 32 bits — is skipped outright). Short
/// inputs (under 1,024 keys) fall back to `sort_unstable`, whose branchy
/// pattern-defeating pdqsort wins at that size.
///
/// Exposed (with [`merge_count_packed_runs`]) so benches and property tests
/// can pin the packed run construction against the tuple-sorting reference.
pub fn radix_sort_packed(keys: &mut Vec<u64>) {
    let len = keys.len();
    if len < RADIX_SORT_MIN || len > u32::MAX as usize {
        keys.sort_unstable();
        return;
    }
    let mut hist = vec![[0u32; 256]; 8];
    for &key in keys.iter() {
        let mut k = key;
        for digit in &mut hist {
            digit[(k & 0xFF) as usize] += 1;
            k >>= 8;
        }
    }
    let mut src = std::mem::take(keys);
    let mut dst = vec![0u64; len];
    for (digit, counts) in hist.iter().enumerate() {
        if counts.iter().any(|&count| count as usize == len) {
            continue;
        }
        let shift = digit * 8;
        let mut offsets = [0u32; 256];
        let mut running = 0u32;
        for (offset, &count) in offsets.iter_mut().zip(counts.iter()) {
            *offset = running;
            running += count;
        }
        for &key in &src {
            let bucket = ((key >> shift) & 0xFF) as usize;
            dst[offsets[bucket] as usize] = key;
            offsets[bucket] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *keys = src;
    crate::invariants::assert_sorted(keys, "radix_sort_packed output");
}

/// Enumerates, radix-sorts and dedups the packed pairs of a slice of blocks —
/// one sorted run of the shard-then-merge pair enumeration.
fn packed_pair_run(blocks: &[Block]) -> Vec<u64> {
    let mut keys: Vec<u64> = blocks.iter().flat_map(|b| b.pairs().map(RecordPair::pack)).collect();
    radix_sort_packed(&mut keys);
    keys.dedup();
    crate::invariants::assert_strictly_ascending(&keys, "packed_pair_run");
    keys
}

/// Counts accumulated by one streaming pass over the distinct candidate-pair
/// set Γ (see [`BlockCollection::stream_pair_counts`]): the pairs themselves
/// are never materialised, only counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Number of distinct candidate pairs `|Γ|`.
    pub distinct: u64,
    /// Number of distinct candidate pairs the probe accepted — `|Γ_tp|` when
    /// probed with ground-truth matching.
    pub matching: u64,
}

impl PairCounts {
    fn add(self, other: Self) -> Self {
        Self {
            distinct: self.distinct + other.distinct,
            matching: self.matching + other.matching,
        }
    }
}

/// A predicate over packed pair keys, monomorphised into the merge-counting
/// loop (no boxing, no per-pair virtual dispatch).
///
/// The blanket impl lets any `Fn(&RecordPair) -> bool` closure serve as a
/// probe (unpacking costs two shifts); [`EntityTableProbe`] is the fast path
/// for ground-truth matching — two array loads and one compare per pair.
pub trait PackedProbe: Sync {
    /// Whether the packed pair matches.
    fn matches(&self, key: u64) -> bool;
}

impl<F> PackedProbe for F
where
    F: Fn(&RecordPair) -> bool + Sync,
{
    #[inline]
    fn matches(&self, key: u64) -> bool {
        self(&RecordPair::from_packed(key))
    }
}

/// Ground-truth matching as a [`PackedProbe`]: a dense per-record entity
/// table (`GroundTruth::entity_table`), so the match test inside the merge
/// loop is two bounds-checked loads and an integer compare. Records beyond
/// the table never match (the blocks may cover ids the truth does not).
#[derive(Debug, Clone, Copy)]
pub struct EntityTableProbe<'a> {
    entity_of: &'a [EntityId],
}

impl<'a> EntityTableProbe<'a> {
    /// Wraps a dense record → entity assignment.
    pub fn new(entity_of: &'a [EntityId]) -> Self {
        Self { entity_of }
    }
}

impl PackedProbe for EntityTableProbe<'_> {
    #[inline]
    fn matches(&self, key: u64) -> bool {
        match (self.entity_of.get((key >> 32) as usize), self.entity_of.get((key as u32) as usize)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// A flat loser (tournament) tree over the current heads of `cap` runs
/// (`cap` a power of two; surplus leaves carry the `u64::MAX` sentinel).
/// `node[0]` holds the run index of the overall winner; `node[1..cap]` hold
/// the loser of each internal match. Advancing the winner replays one
/// leaf-to-root path — ⌈log₂ cap⌉ integer compares — instead of the pop +
/// push (two heap walks over tuple keys) of a binary heap.
struct LoserTree {
    node: Vec<u32>,
    cap: usize,
}

impl LoserTree {
    /// Builds the tree over initial head keys (`keys.len()` == `cap`).
    fn new(keys: &[u64]) -> Self {
        let cap = keys.len();
        debug_assert!(cap.is_power_of_two());
        let mut node = vec![0u32; cap];
        let mut winner = vec![0u32; 2 * cap];
        for (i, slot) in winner.iter_mut().skip(cap).enumerate() {
            *slot = i as u32;
        }
        for n in (1..cap).rev() {
            let a = winner[2 * n];
            let b = winner[2 * n + 1];
            let (win, lose) = if keys[b as usize] < keys[a as usize] { (b, a) } else { (a, b) };
            winner[n] = win;
            node[n] = lose;
        }
        node[0] = if cap > 1 { winner[1] } else { 0 };
        Self { node, cap }
    }

    /// The run index holding the smallest current head.
    #[inline]
    fn winner(&self) -> usize {
        self.node[0] as usize
    }

    /// Replays the path from run `run`'s leaf to the root after its head key
    /// changed, restoring the winner at `node[0]`.
    #[inline]
    fn replay(&mut self, run: usize, keys: &[u64]) {
        let mut winner = run as u32;
        let mut n = (self.cap + run) >> 1;
        while n >= 1 {
            let contender = self.node[n];
            if keys[contender as usize] < keys[winner as usize] {
                self.node[n] = winner;
                winner = contender;
            }
            n >>= 1;
        }
        self.node[0] = winner;
    }

    /// The runner-up's head key: the losers stored on the winner's path are
    /// exactly the winners of every opposing subtree, so their minimum is the
    /// smallest head outside the winning run — the bound below which the
    /// winner's run can be emitted wholesale without touching the tree.
    #[inline]
    fn challenger(&self, keys: &[u64]) -> u64 {
        let winner = self.node[0] as usize;
        let mut best = u64::MAX;
        let mut n = (self.cap + winner) >> 1;
        while n >= 1 {
            best = best.min(keys[self.node[n] as usize]);
            n >>= 1;
        }
        best
    }
}

/// Merges sorted, individually-deduplicated packed runs and feeds the
/// globally deduplicated output to `emit` as strictly-ascending segments
/// (each segment a borrowed slice of one input run).
///
/// The merge is comparison-minimal and adaptive. A [`LoserTree`] keeps the
/// smallest head; the common advance is one leaf-to-root replay — ⌈log₂ k⌉
/// single-`u64` compares. When the same run wins twice in a row (a locally
/// dominating run: blocks cluster pairs by anchor id, so this is frequent),
/// the merge switches to the **galloping fast path**: it computes the
/// runner-up's head once ([`LoserTree::challenger`]) and bulk-emits the
/// winning run's entire prefix below that bound with a single tree update,
/// however long the prefix. When only one run remains alive
/// (`challenger == u64::MAX`), its whole tail goes out as one segment.
/// Finely interleaved runs therefore pay one replay per key — never the
/// challenger walk — while skewed run shapes collapse to segment-sized
/// work.
pub(crate) fn merge_packed_runs_into<E: FnMut(&[u64])>(runs: &[Vec<u64>], mut emit: E) {
    #[cfg(feature = "check-invariants")]
    let mut emit = {
        for run in runs {
            crate::invariants::assert_strictly_ascending(run, "merge_packed_runs_into input run");
        }
        let mut last: Option<u64> = None;
        move |segment: &[u64]| {
            crate::invariants::check_emission_monotone(&mut last, segment);
            emit(segment);
        }
    };
    let live: Vec<&[u64]> = runs.iter().map(Vec::as_slice).filter(|r| !r.is_empty()).collect();
    match live.len() {
        0 => return,
        1 => {
            emit(live[0]);
            return;
        }
        _ => {}
    }
    let cap = live.len().next_power_of_two();
    let mut pos = vec![0usize; live.len()];
    let mut keys = vec![u64::MAX; cap];
    for (key, run) in keys.iter_mut().zip(live.iter()) {
        *key = run[0];
    }
    let mut tree = LoserTree::new(&keys);
    // No valid packed pair is `u64::MAX` (the smaller id is < u32::MAX), so
    // it doubles as both the exhausted-run sentinel and "nothing emitted yet".
    let mut last = u64::MAX;
    let mut prev_winner = usize::MAX;
    loop {
        let w = tree.winner();
        let head = keys[w];
        if head == u64::MAX {
            break;
        }
        let run = live[w];
        let mut p = pos[w];
        if w == prev_winner {
            // The run won twice in a row — gallop: everything below the
            // runner-up's head is below every other run's current and future
            // keys, so the prefix is globally next and — runs being
            // deduplicated — unique except possibly its first key repeating
            // `last`.
            let bound = tree.challenger(&keys);
            if head < bound {
                let start = if head == last { p + 1 } else { p };
                while p < run.len() && run[p] < bound {
                    p += 1;
                }
                if start < p {
                    emit(&run[start..p]);
                    last = run[p - 1];
                }
            } else {
                // head == bound: a cross-run tie; emit one key and let the
                // other run's equal head be dropped as a duplicate.
                if head != last {
                    emit(&run[p..p + 1]);
                    last = head;
                }
                p += 1;
            }
        } else {
            // Single-step advance: emit the winner and replay — no
            // challenger walk on the interleaved fast path.
            if head != last {
                emit(&run[p..p + 1]);
                last = head;
            }
            p += 1;
        }
        pos[w] = p;
        keys[w] = if p < run.len() { run[p] } else { u64::MAX };
        tree.replay(w, &keys);
        prev_winner = w;
    }
}

/// Folds sorted, individually-deduplicated packed runs through the
/// loser-tree merge, counting distinct keys and probing each emitted key
/// exactly once. Nothing beyond the runs themselves is ever allocated.
///
/// Public (with [`radix_sort_packed`]) so benches and property tests can pin
/// it against a heap-merge reference on adversarial run shapes.
pub fn merge_count_packed_runs<P: PackedProbe>(runs: &[Vec<u64>], probe: &P) -> PairCounts {
    let mut counts = PairCounts::default();
    merge_packed_runs_into(runs, |segment| {
        counts.distinct += segment.len() as u64;
        for &key in segment {
            if probe.matches(key) {
                counts.matching += 1;
            }
        }
    });
    counts
}

/// Cuts pair space into `slices` id ranges of roughly equal *anchored-pair
/// mass*: a record anchors the pairs in which it is the smaller id, so in a
/// sorted member list the member at position `i` anchors `len − 1 − i`
/// pairs. Boundaries are placed on the cumulative anchor weight rather than
/// on raw id values, so the per-slice memory bound holds under arbitrary id
/// layouts (skewed, sparse, or outlier-heavy distributions alike).
///
/// Returns `slices + 1` non-decreasing bounds; slice `s` owns the pairs
/// whose smaller id lies in `[bounds[s], bounds[s + 1])`, and together the
/// slices cover pair space exactly once.
fn slice_bounds(sorted_members: &[Vec<RecordId>], slices: usize) -> Vec<u64> {
    let mut weights: Vec<(RecordId, u64)> = sorted_members
        .iter()
        .flat_map(|members| {
            let n = members.len();
            members.iter().enumerate().map(move |(i, &id)| (id, (n - 1 - i) as u64)) // sablock-lint: allow(lossy-id-cast): anchored-pair count, not an id; usize → u64 widens losslessly
        })
        .collect();
    weights.sort_unstable_by_key(|&(id, _)| id);
    let total: u64 = weights.iter().map(|&(_, w)| w).sum();
    let min_id = weights.first().map_or(0, |&(id, _)| u64::from(id.0));
    let end = weights.last().map_or(0, |&(id, _)| u64::from(id.0) + 1);
    let mut bounds = Vec::with_capacity(slices + 1);
    bounds.push(min_id);
    // A bound is emitted once the cumulative weight crosses s·total/slices;
    // it always lands *after* the current id, so an id's anchored pairs are
    // never split across slices (a heavy single id simply keeps its slice).
    let mut cumulative = 0u64;
    let mut next_cut = 1usize;
    for &(id, weight) in &weights {
        cumulative += weight;
        while next_cut < slices && u128::from(cumulative) * slices as u128 >= u128::from(total) * next_cut as u128 {
            bounds.push(u64::from(id.0) + 1);
            next_cut += 1;
        }
    }
    while bounds.len() < slices + 1 {
        bounds.push(end);
    }
    bounds[slices] = end;
    bounds
}

/// A single block: a bucket key plus the records hashed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    key: String,
    members: Vec<RecordId>,
}

impl Block {
    /// Creates a block. Duplicate member ids are removed, preserving order.
    pub fn new(key: impl Into<String>, mut members: Vec<RecordId>) -> Self {
        let mut seen = StableHashSet::default();
        members.retain(|id| seen.insert(*id));
        Self { key: key.into(), members }
    }

    /// The bucket key that produced this block.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The member record ids.
    pub fn members(&self) -> &[RecordId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of (unordered) record pairs the block contributes, counting
    /// redundancy across blocks: `|b|·(|b|−1)/2`.
    pub fn pair_count(&self) -> u64 {
        let n = self.members.len() as u64;
        n * n.saturating_sub(1) / 2
    }

    /// Iterates over the distinct pairs within this block.
    pub fn pairs(&self) -> impl Iterator<Item = RecordPair> + '_ {
        self.members.iter().enumerate().flat_map(move |(i, &a)| {
            self.members[i + 1..]
                .iter()
                .filter_map(move |&b| RecordPair::new(a, b))
        })
    }
}

/// The output of a blocking technique: a set of (possibly overlapping) blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockCollection {
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection from blocks, dropping blocks with fewer than two
    /// members (they can never contribute a candidate pair).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        let blocks = blocks.into_iter().filter(|b| b.len() >= 2).collect();
        Self { blocks }
    }

    /// [`BlockCollection::from_blocks`] with record-id-width validation: every
    /// member id must stay at or below [`MAX_RECORD_ID`]. An id of `u32::MAX`
    /// would alias the `u64::MAX` exhausted-run sentinel of the loser-tree
    /// merge when packed, silently corrupting pair counts — so it is rejected
    /// here with a typed [`CoreError::RecordIdOverflow`]. Blockers that
    /// assemble collections from externally supplied ids should construct
    /// through this entry point.
    pub fn try_from_blocks(blocks: Vec<Block>) -> Result<Self> {
        for block in &blocks {
            if let Some(&id) = block.members().iter().find(|id| id.0 > MAX_RECORD_ID) {
                return Err(CoreError::RecordIdOverflow(u64::from(id.0)));
            }
        }
        Ok(Self::from_blocks(blocks))
    }

    /// Builds a collection from a map of bucket key → member records,
    /// which is the natural output shape of key-based blocking techniques.
    /// Accepts any `(key, members)` iterator — `HashMap`, `BTreeMap`, or a
    /// plain vec of entries — since the blocks are re-sorted by key anyway.
    pub fn from_key_map<K: std::fmt::Display>(map: impl IntoIterator<Item = (K, Vec<RecordId>)>) -> Self {
        let mut blocks: Vec<Block> = map
            .into_iter()
            .map(|(key, members)| Block::new(key.to_string(), members))
            .filter(|b| b.len() >= 2)
            .collect();
        // Deterministic order regardless of hash-map iteration order.
        blocks.sort_by(|a, b| a.key().cmp(b.key()));
        Self { blocks }
    }

    /// Adds a block (ignored if it has fewer than two members).
    pub fn push(&mut self, block: Block) {
        if block.len() >= 2 {
            self.blocks.push(block);
        }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Size of the largest block (0 when empty).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(Block::len).max().unwrap_or(0)
    }

    /// Mean block size (0 when empty).
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(Block::len).sum::<usize>() as f64 / self.blocks.len() as f64
    }

    /// Total number of pairs counted *with* redundancy across blocks — the
    /// quantity `|Γ_m| = Σ_b |b|·(|b|−1)/2` used by the PQ* measure.
    pub fn redundant_pair_count(&self) -> u64 {
        self.blocks.iter().map(Block::pair_count).sum()
    }

    /// The per-shard sorted, deduplicated packed pair runs of the whole
    /// collection (the PR-2 sort-dedup shards, now radix-sorted `Vec<u64>`).
    fn packed_runs(&self, threads: usize) -> Vec<Vec<u64>> {
        if self.blocks.len() > PAIR_SHARD_BLOCKS {
            let shards: Vec<&[Block]> = self.blocks.chunks(PAIR_SHARD_BLOCKS).collect();
            parallel_map(&shards, threads, |shard| packed_pair_run(shard))
        } else {
            vec![packed_pair_run(&self.blocks)]
        }
    }

    /// The set Γ of *distinct* candidate pairs across all blocks, returned as
    /// a vector sorted in ascending [`RecordPair`] order.
    ///
    /// Enumeration is sort-dedup based rather than hash-set based: blocks are
    /// split into shards, each shard's packed pairs are radix-sorted and
    /// deduplicated independently (in parallel for large collections), the
    /// runs are merged once through the loser-tree/galloping merge into a
    /// single packed vector, and the keys are unpacked once at the end. This
    /// keeps bulk enumeration cache-friendly and allocation-light, and the
    /// output order is deterministic regardless of thread count.
    ///
    /// This materialises all of Γ — at paper scale that is gigabytes. Callers
    /// that only need counts (metrics, `|Γ|`, true-positive tallies) should
    /// use [`BlockCollection::stream_pair_counts`], which is semantically
    /// identical but never holds the full set.
    pub fn distinct_pairs(&self) -> Vec<RecordPair> {
        let runs = self.packed_runs(default_threads());
        let mut packed: Vec<u64> = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        merge_packed_runs_into(&runs, |segment| packed.extend_from_slice(segment));
        packed.into_iter().map(RecordPair::from_packed).collect()
    }

    /// Number of distinct candidate pairs `|Γ|`, computed by the streaming
    /// counter — the full pair set is never materialised.
    pub fn num_distinct_pairs(&self) -> u64 {
        self.stream_pair_counts(|_: &RecordPair| false).distinct
    }

    /// Streams the distinct candidate-pair set Γ through a counting fold
    /// instead of materialising it: returns `|Γ|` plus the number of distinct
    /// pairs the probe accepts (with ground truth as the probe, `|Γ_tp|`).
    /// Each distinct pair is probed exactly once, in ascending order within
    /// its pair-space slice.
    ///
    /// Closure-probe convenience wrapper around
    /// [`BlockCollection::stream_packed_counts`]; bulk callers that can
    /// phrase their probe over packed keys (such as
    /// [`EntityTableProbe`] for ground truth) should use the packed entry
    /// points directly.
    pub fn stream_pair_counts<F>(&self, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        self.stream_packed_counts(probe)
    }

    /// [`BlockCollection::stream_pair_counts`] with an explicit worker count
    /// (the result never depends on it — see `tests/determinism.rs`).
    pub fn stream_pair_counts_with_threads<F>(&self, threads: usize, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        self.stream_packed_counts_with_threads(threads, probe)
    }

    /// The streaming counter with an explicit slice count, exposed so tests
    /// can force the multi-slice path on small collections. `slices` only
    /// affects the memory/rescan trade-off, never the counts.
    pub fn stream_pair_counts_sliced<F>(&self, threads: usize, slices: usize, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        self.stream_packed_counts_sliced(threads, slices, probe)
    }

    /// The streaming Γ counter over a [`PackedProbe`].
    ///
    /// Semantically this is `distinct_pairs()` followed by a count/filter,
    /// but the memory high-water mark is one pair-space *slice* per worker
    /// rather than the whole Γ: pair space is range-partitioned by the
    /// smaller record id into slices sized off the redundant pair count
    /// (boundaries cut on cumulative anchored-pair mass, so the bound holds
    /// for skewed id layouts too), and each slice independently radix-sorts
    /// per-shard packed runs and folds them through the loser-tree/galloping
    /// merge counter, which deduplicates on the fly. Slices are disjoint in
    /// pair space, so their counts add up exactly; [`parallel_map`] drives
    /// the slice (or, for single-slice collections, shard) enumeration, and
    /// the result is identical for every thread count.
    pub fn stream_packed_counts<P: PackedProbe>(&self, probe: P) -> PairCounts {
        self.stream_packed_counts_with_threads(default_threads(), probe)
    }

    /// [`BlockCollection::stream_packed_counts`] with an explicit worker
    /// count (the result never depends on it).
    pub fn stream_packed_counts_with_threads<P: PackedProbe>(&self, threads: usize, probe: P) -> PairCounts {
        let slices = self
            .redundant_pair_count()
            .div_ceil(STREAM_SLICE_TARGET_PAIRS)
            .clamp(1, MAX_STREAM_SLICES as u64) as usize;
        self.stream_packed_counts_sliced(threads, slices, probe)
    }

    /// [`BlockCollection::stream_packed_counts`] with an explicit slice
    /// count. `slices` only affects the memory/rescan trade-off, never the
    /// counts.
    pub fn stream_packed_counts_sliced<P: PackedProbe>(&self, threads: usize, slices: usize, probe: P) -> PairCounts {
        if self.blocks.is_empty() {
            return PairCounts::default();
        }
        if slices <= 1 {
            // One slice covering all of pair space: build the sorted shard
            // runs in parallel (exactly as `distinct_pairs` does) and fold
            // them through the merge counter instead of merging into a vector.
            let runs = self.packed_runs(threads);
            return merge_count_packed_runs(&runs, &probe);
        }

        // Sort each block's members once so that, inside every block, the
        // members owning a slice (as the smaller id of a pair) form one
        // contiguous range — enumeration then touches each pair exactly once
        // across all slices, plus two binary searches per block per slice.
        let sorted_members: Vec<Vec<RecordId>> = parallel_map(&self.blocks, threads, |block| {
            let mut members = block.members().to_vec();
            members.sort_unstable();
            members
        });
        let slices = slices.clamp(1, MAX_STREAM_SLICES);
        let bounds = slice_bounds(&sorted_members, slices);

        let slice_ids: Vec<usize> = (0..slices).collect();
        let counts = parallel_map(&slice_ids, threads, |&slice| {
            let lo = bounds[slice];
            let hi = bounds[slice + 1];
            let mut runs: Vec<Vec<u64>> = Vec::new();
            let mut anchor_ranges: Vec<(usize, usize)> = Vec::with_capacity(PAIR_SHARD_BLOCKS);
            for shard in sorted_members.chunks(PAIR_SHARD_BLOCKS) {
                // Members are sorted and deduplicated, so the pairs whose
                // *smaller* id falls in [lo, hi) are exactly those anchored
                // at positions [start, end) — and `members[i] < members[j]`
                // for i < j, so the packed key needs no canonicalisation.
                // The anchor at position i owns `len − 1 − i` pairs, which
                // sizes the run exactly up front (no growth reallocations).
                anchor_ranges.clear();
                let mut capacity = 0usize;
                for members in shard {
                    let start = members.partition_point(|id| u64::from(id.0) < lo);
                    let end = members.partition_point(|id| u64::from(id.0) < hi);
                    anchor_ranges.push((start, end));
                    let anchors = end - start;
                    if anchors > 0 {
                        capacity += anchors * (members.len() - 1) - anchors * (2 * start + anchors - 1) / 2;
                    }
                }
                let mut keys: Vec<u64> = Vec::with_capacity(capacity);
                for (members, &(start, end)) in shard.iter().zip(&anchor_ranges) {
                    for i in start..end {
                        let anchor = u64::from(members[i].0) << 32;
                        for &other in &members[i + 1..] {
                            keys.push(anchor | u64::from(other.0));
                        }
                    }
                }
                debug_assert_eq!(keys.len(), capacity);
                radix_sort_packed(&mut keys);
                keys.dedup();
                if !keys.is_empty() {
                    runs.push(keys);
                }
            }
            merge_count_packed_runs(&runs, &probe)
        });
        counts.into_iter().fold(PairCounts::default(), PairCounts::add)
    }

    /// The blocking function θ_B: do the two records share at least one block?
    ///
    /// This scans blocks and is intended for point queries (examples, tests);
    /// bulk evaluation goes through [`BlockCollection::stream_pair_counts`].
    pub fn theta(&self, a: RecordId, b: RecordId) -> bool {
        if a == b {
            return false;
        }
        self.blocks
            .iter()
            .any(|blk| blk.members().contains(&a) && blk.members().contains(&b))
    }

    /// Per-record block membership: record → indices of blocks containing it.
    /// Needed by meta-blocking to build the blocking graph.
    pub fn membership(&self) -> HashMap<RecordId, Vec<usize>> {
        let mut map: HashMap<RecordId, Vec<usize>> = HashMap::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            for &member in block.members() {
                map.entry(member).or_default().push(idx);
            }
        }
        map
    }
}

/// A blocking technique: maps a dataset to a collection of blocks.
///
/// Implemented by the SA-LSH blocker of this crate and by every baseline in
/// `sablock-baselines`, so the evaluation harness can treat them uniformly.
pub trait Blocker {
    /// A short human-readable name used in reports (e.g. `"SA-LSH"`).
    fn name(&self) -> String;

    /// Produces blocks for the dataset.
    fn block(&self, dataset: &Dataset) -> Result<BlockCollection>;
}

impl<B: Blocker + ?Sized> Blocker for Box<B> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        (**self).block(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    fn pk(a: u32, b: u32) -> u64 {
        RecordPair::new(rid(a), rid(b)).unwrap().pack()
    }

    #[test]
    fn block_deduplicates_members_and_counts_pairs() {
        let b = Block::new("k1", vec![rid(1), rid(2), rid(1), rid(3)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.pair_count(), 3);
        assert_eq!(b.pairs().count(), 3);
        assert_eq!(b.key(), "k1");
        assert!(!b.is_empty());
    }

    #[test]
    fn singleton_and_empty_blocks_are_dropped() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(1)]),
            Block::new("b", vec![]),
            Block::new("c", vec![rid(1), rid(2)]),
        ]);
        assert_eq!(collection.num_blocks(), 1);
        let mut collection = BlockCollection::new();
        collection.push(Block::new("solo", vec![rid(9)]));
        assert!(collection.is_empty());
    }

    #[test]
    fn distinct_vs_redundant_pairs() {
        // Two overlapping blocks: {1,2,3} and {2,3,4} share the pair (2,3).
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3)]),
            Block::new("b2", vec![rid(2), rid(3), rid(4)]),
        ]);
        assert_eq!(collection.redundant_pair_count(), 6);
        assert_eq!(collection.num_distinct_pairs(), 5);
        assert!(collection.theta(rid(2), rid(3)));
        assert!(collection.theta(rid(1), rid(3)));
        assert!(!collection.theta(rid(1), rid(4)));
        assert!(!collection.theta(rid(1), rid(1)));
    }

    #[test]
    fn paper_example_block_counts() {
        // Fig. 1: B3 = {{r1,r2,r6}, {r4,r6}, {r3}, {r5}} has 4 distinct pairs;
        // B1 = {{r1,r2,r4,r6}, {r3}, {r5}} has 6; B2 = {{r1,r2,r3,r6}, {r4,r5,r6}} has 9.
        let b1 = BlockCollection::from_blocks(vec![Block::new("x", vec![rid(1), rid(2), rid(4), rid(6)])]);
        assert_eq!(b1.num_distinct_pairs(), 6);
        let b2 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(3), rid(6)]),
            Block::new("y", vec![rid(4), rid(5), rid(6)]),
        ]);
        assert_eq!(b2.num_distinct_pairs(), 9);
        let b3 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(6)]),
            Block::new("y", vec![rid(4), rid(6)]),
        ]);
        assert_eq!(b3.num_distinct_pairs(), 4);
    }

    #[test]
    fn key_map_construction_is_deterministic() {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        map.insert("z".into(), vec![rid(1), rid(2)]);
        map.insert("a".into(), vec![rid(3), rid(4)]);
        map.insert("solo".into(), vec![rid(5)]);
        let collection = BlockCollection::from_key_map(map);
        assert_eq!(collection.num_blocks(), 2);
        assert_eq!(collection.blocks()[0].key(), "a");
        assert_eq!(collection.blocks()[1].key(), "z");
    }

    #[test]
    fn size_statistics() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3), rid(4)]),
            Block::new("b2", vec![rid(5), rid(6)]),
        ]);
        assert_eq!(collection.max_block_size(), 4);
        assert!((collection.mean_block_size() - 3.0).abs() < 1e-12);
        let empty = BlockCollection::new();
        assert_eq!(empty.max_block_size(), 0);
        assert_eq!(empty.mean_block_size(), 0.0);
    }

    #[test]
    fn distinct_pairs_are_sorted_and_deduplicated() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(3), rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(1)]),
            Block::new("b3", vec![rid(9), rid(1)]),
        ]);
        let pairs = collection.distinct_pairs();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted strictly ascending (deduped)");
        assert_eq!(pairs.len() as u64, collection.num_distinct_pairs());
        // (1,2) appears in two blocks but only once in Γ.
        let p12 = RecordPair::new(rid(1), rid(2)).unwrap();
        assert_eq!(pairs.iter().filter(|&&p| p == p12).count(), 1);
    }

    #[test]
    fn sharded_enumeration_matches_single_run() {
        // More blocks than one shard (PAIR_SHARD_BLOCKS) with heavy overlap:
        // the sharded, merged enumeration must equal a single sort-dedup pass.
        let blocks: Vec<Block> = (0..(PAIR_SHARD_BLOCKS * 2 + 7))
            .map(|i| {
                let base = (i % 13) as u32;
                Block::new(format!("b{i}"), vec![rid(base), rid(base + 1), rid(base + 2)])
            })
            .collect();
        let collection = BlockCollection::from_blocks(blocks);
        let reference: Vec<RecordPair> = packed_pair_run(collection.blocks())
            .into_iter()
            .map(RecordPair::from_packed)
            .collect();
        assert_eq!(collection.distinct_pairs(), reference);
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        // Mixed magnitudes (small ids, huge ids, shared high halves) across
        // the fallback threshold and beyond it.
        let mut keys: Vec<u64> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..(RADIX_SORT_MIN * 3) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (state >> 40) as u32 % 50_000;
            let b = a + 1 + (state as u32 % 1_000);
            keys.push(RecordPair::pack_ascending(rid(a), rid(b)));
        }
        keys.push(pk(0, u32::MAX));
        keys.push(pk(u32::MAX - 1, u32::MAX));
        let mut expected = keys.clone();
        expected.sort_unstable();
        radix_sort_packed(&mut keys);
        assert_eq!(keys, expected);

        // Short input takes the comparison fallback; result is identical.
        let mut short = vec![pk(5, 9), pk(0, 1), pk(5, 6)];
        radix_sort_packed(&mut short);
        assert_eq!(short, vec![pk(0, 1), pk(5, 6), pk(5, 9)]);
        let mut empty: Vec<u64> = Vec::new();
        radix_sort_packed(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn streaming_counts_match_materialised_enumeration() {
        // Overlap-heavy collection spanning several enumeration shards.
        let blocks: Vec<Block> = (0..(PAIR_SHARD_BLOCKS * 2 + 7))
            .map(|i| {
                let base = (i % 13) as u32;
                Block::new(format!("b{i}"), vec![rid(base), rid(base + 1), rid(base + 2)])
            })
            .collect();
        let collection = BlockCollection::from_blocks(blocks);
        let pairs = collection.distinct_pairs();
        let expected_matching = pairs.iter().filter(|p| p.first().0 % 2 == 0).count() as u64;
        // Every slice count and every thread count yields identical counts.
        for slices in [1, 2, 3, 7, 64] {
            for threads in [1, 4] {
                let counts =
                    collection.stream_pair_counts_sliced(threads, slices, |p: &RecordPair| p.first().0 % 2 == 0);
                assert_eq!(counts.distinct, pairs.len() as u64, "slices={slices} threads={threads}");
                assert_eq!(counts.matching, expected_matching, "slices={slices} threads={threads}");
            }
        }
        let auto = collection.stream_pair_counts(|p: &RecordPair| p.first().0 % 2 == 0);
        assert_eq!(auto.distinct, pairs.len() as u64);
        assert_eq!(auto.matching, expected_matching);
    }

    #[test]
    fn streaming_counts_handle_degenerate_collections() {
        let empty = BlockCollection::new();
        assert_eq!(empty.stream_pair_counts(|_: &RecordPair| true), PairCounts::default());
        assert_eq!(empty.num_distinct_pairs(), 0);
        // Singleton-only input: every block is dropped at construction.
        let singletons = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(1)]),
            Block::new("b", vec![rid(2)]),
        ]);
        assert_eq!(singletons.stream_pair_counts_sliced(4, 8, |_: &RecordPair| true), PairCounts::default());
        // A collection whose ids all collapse onto one value of pair space
        // still splits safely (the slice count is capped by the id span).
        let narrow = BlockCollection::from_blocks(vec![Block::new("n", vec![rid(5), rid(6)])]);
        let counts = narrow.stream_pair_counts_sliced(4, 64, |_: &RecordPair| true);
        assert_eq!(counts, PairCounts { distinct: 1, matching: 1 });
    }

    #[test]
    fn streaming_counts_survive_skewed_id_layouts() {
        // Dense ids plus one outlier near u32::MAX: mass-based boundaries
        // must still spread the work and count exactly.
        let mut blocks: Vec<Block> = (0..40)
            .map(|i| Block::new(format!("d{i}"), vec![rid(i), rid(i + 1), rid(i + 2)]))
            .collect();
        blocks.push(Block::new("outlier", vec![rid(7), rid(u32::MAX - 1)]));
        let collection = BlockCollection::from_blocks(blocks);
        let expected = collection.distinct_pairs().len() as u64;
        for slices in [2usize, 8, 64] {
            let counts = collection.stream_pair_counts_sliced(4, slices, |_: &RecordPair| false);
            assert_eq!(counts.distinct, expected, "slices={slices}");
        }
    }

    #[test]
    fn slice_bounds_balance_anchor_mass() {
        // 64 two-member blocks with distinct anchors: 64 units of anchor
        // mass. Four slices must cover everything, stay non-decreasing and
        // put a fair share (here: exactly a quarter) in each slice.
        let members: Vec<Vec<RecordId>> = (0..64u32).map(|i| vec![rid(10 * i), rid(10 * i + 1)]).collect();
        let bounds = slice_bounds(&members, 4);
        assert_eq!(bounds.len(), 5);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), u64::from(10u32 * 63 + 1) + 1);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        for slice in 0..4 {
            let anchored = members
                .iter()
                .flat_map(|m| m.first())
                .filter(|id| (bounds[slice]..bounds[slice + 1]).contains(&u64::from(id.0)))
                .count();
            assert_eq!(anchored, 16, "slice {slice} holds a quarter of the anchor mass");
        }
    }

    #[test]
    fn loser_tree_merge_deduplicates_across_runs() {
        let runs = vec![
            vec![pk(0, 1), pk(1, 2), pk(5, 6)],
            vec![pk(0, 2), pk(1, 2), pk(7, 8)],
            vec![pk(0, 1), pk(7, 8)],
        ];
        let counts = merge_count_packed_runs(&runs, &|p: &RecordPair| p.second().0 >= 6);
        assert_eq!(counts.distinct, 5);
        assert_eq!(counts.matching, 2);
        assert_eq!(merge_count_packed_runs(&[], &|_: &RecordPair| true), PairCounts::default());
        // Empty runs in the middle are skipped, not merged.
        let with_empties = vec![vec![], vec![pk(0, 1)], vec![], vec![pk(0, 1), pk(2, 3)]];
        let counts = merge_count_packed_runs(&with_empties, &|_: &RecordPair| false);
        assert_eq!(counts.distinct, 2);
    }

    #[test]
    fn loser_tree_merge_gallops_across_disjoint_runs() {
        // Runs whose key ranges never interleave: the gallop path must emit
        // each run wholesale and still produce the exact union.
        let runs: Vec<Vec<u64>> = (0..5u32)
            .map(|r| (0..200u32).map(|i| pk(1000 * r + i, 1000 * r + i + 1)).collect())
            .collect();
        let counts = merge_count_packed_runs(&runs, &|_: &RecordPair| true);
        assert_eq!(counts.distinct, 1000);
        assert_eq!(counts.matching, 1000);
        // And interleaved single-element ties across many runs.
        let tied: Vec<Vec<u64>> = (0..9).map(|_| vec![pk(3, 4)]).collect();
        let counts = merge_count_packed_runs(&tied, &|_: &RecordPair| false);
        assert_eq!(counts.distinct, 1);
    }

    #[test]
    fn entity_table_probe_matches_ground_truth_semantics() {
        use sablock_datasets::ground_truth::EntityId;
        let table = vec![EntityId(0), EntityId(0), EntityId(1), EntityId(1), EntityId(2)];
        let probe = EntityTableProbe::new(&table);
        assert!(probe.matches(pk(0, 1)));
        assert!(probe.matches(pk(2, 3)));
        assert!(!probe.matches(pk(1, 2)));
        // Records beyond the table never match — not even each other.
        assert!(!probe.matches(pk(3, 17)));
        assert!(!probe.matches(pk(17, 18)));
    }

    #[test]
    fn record_id_overflow_is_rejected_at_construction() {
        // An id just over the boundary: u32::MAX packs into keys that collide
        // with the merge sentinel, so checked construction must reject it.
        let overflowing = vec![
            Block::new("ok", vec![rid(0), rid(1)]),
            Block::new("bad", vec![rid(3), rid(u32::MAX)]),
        ];
        let err = BlockCollection::try_from_blocks(overflowing).unwrap_err();
        assert!(matches!(err, CoreError::RecordIdOverflow(id) if id == u64::from(u32::MAX)));
        // The largest representable id is fine, and counts stay exact.
        let edge = BlockCollection::try_from_blocks(vec![Block::new(
            "edge",
            vec![rid(MAX_RECORD_ID - 1), rid(MAX_RECORD_ID)],
        )])
        .unwrap();
        assert_eq!(edge.num_distinct_pairs(), 1);
    }

    #[test]
    fn membership_maps_records_to_blocks() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(3)]),
        ]);
        let membership = collection.membership();
        assert_eq!(membership[&rid(2)], vec![0, 1]);
        assert_eq!(membership[&rid(1)], vec![0]);
        assert!(!membership.contains_key(&rid(9)));
    }
}
