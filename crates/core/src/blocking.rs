//! Blocks, block collections and the [`Blocker`] trait.
//!
//! Section 3 of the paper defines the blocking problem through the *blocking
//! function* θ_B(r1, r2), which returns 1 when at least one block of B
//! contains both records. [`BlockCollection`] materialises B and exposes the
//! quantities the evaluation measures need: the set Γ of distinct candidate
//! pairs, the redundant pair count Γ_m, and θ_B itself.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use sablock_datasets::record::RecordPair;
use sablock_datasets::{Dataset, RecordId};
use sablock_textual::hashing::StableHashSet;

use crate::error::Result;
use crate::parallel::{default_threads, parallel_map};

/// How many blocks one shard of the pair-enumeration covers. Shards are
/// enumerated and sorted independently (in parallel for large collections)
/// and then combined by a sorted merge.
const PAIR_SHARD_BLOCKS: usize = 256;

/// Target number of (redundant) pairs per pair-space slice of the streaming
/// counter. Collections whose redundant pair count stays below this are
/// counted in a single slice; larger ones are split so that only
/// `threads × slice` pairs are ever resident at once.
const STREAM_SLICE_TARGET_PAIRS: u64 = 32_000_000;

/// Upper bound on the number of pair-space slices of the streaming counter.
/// Every slice re-scans the block headers (cheap), so an excessive slice
/// count would trade memory nobody needs saved for wasted scans.
const MAX_STREAM_SLICES: usize = 64;

/// Enumerates, sorts and dedups the pairs of a slice of blocks — one sorted
/// run of the shard-then-merge pair enumeration.
fn sorted_pair_run(blocks: &[Block]) -> Vec<RecordPair> {
    let mut pairs: Vec<RecordPair> = blocks.iter().flat_map(Block::pairs).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Merges two sorted, deduplicated runs into one, dropping duplicates that
/// appear in both (the classic sorted-merge of merge sort, with set union
/// semantics).
fn merge_sorted_dedup(a: Vec<RecordPair>, b: Vec<RecordPair>) -> Vec<RecordPair> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => out.push(ia.next().expect("peeked")),
                std::cmp::Ordering::Greater => out.push(ib.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    out.push(ia.next().expect("peeked"));
                    ib.next();
                }
            },
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, _) => {
                out.extend(ib);
                break;
            }
        }
    }
    out
}

/// Counts accumulated by one streaming pass over the distinct candidate-pair
/// set Γ (see [`BlockCollection::stream_pair_counts`]): the pairs themselves
/// are never materialised, only counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Number of distinct candidate pairs `|Γ|`.
    pub distinct: u64,
    /// Number of distinct candidate pairs the probe accepted — `|Γ_tp|` when
    /// probed with ground-truth matching.
    pub matching: u64,
}

impl PairCounts {
    fn add(self, other: Self) -> Self {
        Self {
            distinct: self.distinct + other.distinct,
            matching: self.matching + other.matching,
        }
    }
}

/// Folds sorted, individually-deduplicated pair runs through a k-way
/// sorted-merge counter: pops pairs in ascending order across all runs,
/// drops cross-run duplicates on the fly, and probes each emitted distinct
/// pair exactly once. Nothing beyond the runs themselves is ever allocated.
fn merge_count_runs<F>(runs: Vec<Vec<RecordPair>>, probe: &F) -> PairCounts
where
    F: Fn(&RecordPair) -> bool,
{
    let mut counts = PairCounts::default();
    if runs.len() == 1 {
        // Single run: already sorted and deduplicated, no merge needed.
        for pair in &runs[0] {
            counts.distinct += 1;
            if probe(pair) {
                counts.matching += 1;
            }
        }
        return counts;
    }
    let mut iters: Vec<_> = runs.iter().map(|run| run.iter().copied()).collect();
    let mut heap: BinaryHeap<Reverse<(RecordPair, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (idx, iter) in iters.iter_mut().enumerate() {
        if let Some(pair) = iter.next() {
            heap.push(Reverse((pair, idx)));
        }
    }
    let mut last: Option<RecordPair> = None;
    while let Some(Reverse((pair, idx))) = heap.pop() {
        if last != Some(pair) {
            counts.distinct += 1;
            if probe(&pair) {
                counts.matching += 1;
            }
            last = Some(pair);
        }
        if let Some(next) = iters[idx].next() {
            heap.push(Reverse((next, idx)));
        }
    }
    counts
}

/// Cuts pair space into `slices` id ranges of roughly equal *anchored-pair
/// mass*: a record anchors the pairs in which it is the smaller id, so in a
/// sorted member list the member at position `i` anchors `len − 1 − i`
/// pairs. Boundaries are placed on the cumulative anchor weight rather than
/// on raw id values, so the per-slice memory bound holds under arbitrary id
/// layouts (skewed, sparse, or outlier-heavy distributions alike).
///
/// Returns `slices + 1` non-decreasing bounds; slice `s` owns the pairs
/// whose smaller id lies in `[bounds[s], bounds[s + 1])`, and together the
/// slices cover pair space exactly once.
fn slice_bounds(sorted_members: &[Vec<RecordId>], slices: usize) -> Vec<u64> {
    let mut weights: Vec<(RecordId, u64)> = sorted_members
        .iter()
        .flat_map(|members| {
            let n = members.len();
            members.iter().enumerate().map(move |(i, &id)| (id, (n - 1 - i) as u64))
        })
        .collect();
    weights.sort_unstable_by_key(|&(id, _)| id);
    let total: u64 = weights.iter().map(|&(_, w)| w).sum();
    let min_id = weights.first().map_or(0, |&(id, _)| u64::from(id.0));
    let end = weights.last().map_or(0, |&(id, _)| u64::from(id.0) + 1);
    let mut bounds = Vec::with_capacity(slices + 1);
    bounds.push(min_id);
    // A bound is emitted once the cumulative weight crosses s·total/slices;
    // it always lands *after* the current id, so an id's anchored pairs are
    // never split across slices (a heavy single id simply keeps its slice).
    let mut cumulative = 0u64;
    let mut next_cut = 1usize;
    for &(id, weight) in &weights {
        cumulative += weight;
        while next_cut < slices && u128::from(cumulative) * slices as u128 >= u128::from(total) * next_cut as u128 {
            bounds.push(u64::from(id.0) + 1);
            next_cut += 1;
        }
    }
    while bounds.len() < slices + 1 {
        bounds.push(end);
    }
    bounds[slices] = end;
    bounds
}

/// A single block: a bucket key plus the records hashed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    key: String,
    members: Vec<RecordId>,
}

impl Block {
    /// Creates a block. Duplicate member ids are removed, preserving order.
    pub fn new(key: impl Into<String>, mut members: Vec<RecordId>) -> Self {
        let mut seen = StableHashSet::default();
        members.retain(|id| seen.insert(*id));
        Self { key: key.into(), members }
    }

    /// The bucket key that produced this block.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The member record ids.
    pub fn members(&self) -> &[RecordId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of (unordered) record pairs the block contributes, counting
    /// redundancy across blocks: `|b|·(|b|−1)/2`.
    pub fn pair_count(&self) -> u64 {
        let n = self.members.len() as u64;
        n * n.saturating_sub(1) / 2
    }

    /// Iterates over the distinct pairs within this block.
    pub fn pairs(&self) -> impl Iterator<Item = RecordPair> + '_ {
        self.members.iter().enumerate().flat_map(move |(i, &a)| {
            self.members[i + 1..]
                .iter()
                .filter_map(move |&b| RecordPair::new(a, b))
        })
    }
}

/// The output of a blocking technique: a set of (possibly overlapping) blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockCollection {
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection from blocks, dropping blocks with fewer than two
    /// members (they can never contribute a candidate pair).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        let blocks = blocks.into_iter().filter(|b| b.len() >= 2).collect();
        Self { blocks }
    }

    /// Builds a collection from a map of bucket key → member records,
    /// which is the natural output shape of key-based blocking techniques.
    pub fn from_key_map<K: std::fmt::Display>(map: HashMap<K, Vec<RecordId>>) -> Self {
        let mut blocks: Vec<Block> = map
            .into_iter()
            .map(|(key, members)| Block::new(key.to_string(), members))
            .filter(|b| b.len() >= 2)
            .collect();
        // Deterministic order regardless of hash-map iteration order.
        blocks.sort_by(|a, b| a.key().cmp(b.key()));
        Self { blocks }
    }

    /// Adds a block (ignored if it has fewer than two members).
    pub fn push(&mut self, block: Block) {
        if block.len() >= 2 {
            self.blocks.push(block);
        }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Size of the largest block (0 when empty).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(Block::len).max().unwrap_or(0)
    }

    /// Mean block size (0 when empty).
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(Block::len).sum::<usize>() as f64 / self.blocks.len() as f64
    }

    /// Total number of pairs counted *with* redundancy across blocks — the
    /// quantity `|Γ_m| = Σ_b |b|·(|b|−1)/2` used by the PQ* measure.
    pub fn redundant_pair_count(&self) -> u64 {
        self.blocks.iter().map(Block::pair_count).sum()
    }

    /// The set Γ of *distinct* candidate pairs across all blocks, returned as
    /// a vector sorted in ascending [`RecordPair`] order.
    ///
    /// Enumeration is sort-dedup based rather than hash-set based: blocks are
    /// split into shards, each shard's pairs are enumerated, sorted and
    /// deduplicated independently (in parallel for large collections), and the
    /// sorted runs are combined by a duplicate-dropping sorted merge. This
    /// keeps bulk enumeration cache-friendly and allocation-light, and the
    /// output order is deterministic regardless of thread count.
    ///
    /// This materialises all of Γ — at paper scale that is gigabytes. Callers
    /// that only need counts (metrics, `|Γ|`, true-positive tallies) should
    /// use [`BlockCollection::stream_pair_counts`], which is semantically
    /// identical but never holds the full set.
    pub fn distinct_pairs(&self) -> Vec<RecordPair> {
        let mut runs: Vec<Vec<RecordPair>> = if self.blocks.len() > PAIR_SHARD_BLOCKS {
            let shards: Vec<&[Block]> = self.blocks.chunks(PAIR_SHARD_BLOCKS).collect();
            parallel_map(&shards, default_threads(), |shard| sorted_pair_run(shard))
        } else {
            vec![sorted_pair_run(&self.blocks)]
        };
        // Balanced binary sorted-merge of the runs.
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(merge_sorted_dedup(a, b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    }

    /// Number of distinct candidate pairs `|Γ|`, computed by the streaming
    /// counter — the full pair set is never materialised.
    pub fn num_distinct_pairs(&self) -> u64 {
        self.stream_pair_counts(|_| false).distinct
    }

    /// Streams the distinct candidate-pair set Γ through a counting fold
    /// instead of materialising it: returns `|Γ|` plus the number of distinct
    /// pairs the probe accepts (with ground truth as the probe, `|Γ_tp|`).
    /// Each distinct pair is probed exactly once, in ascending order within
    /// its pair-space slice.
    ///
    /// Semantically this is `distinct_pairs()` followed by a count/filter,
    /// but the memory high-water mark is one pair-space *slice* per worker
    /// rather than the whole Γ: pair space is range-partitioned by the
    /// smaller record id into slices sized off the redundant pair count
    /// (boundaries cut on cumulative anchored-pair mass, so the bound holds
    /// for skewed id layouts too), and each slice independently enumerates
    /// per-shard sorted runs (the PR-2 sort-dedup shards) and folds them
    /// through a k-way sorted-merge counter
    /// that deduplicates on the fly. Slices are disjoint in pair space, so
    /// their counts add up exactly; [`parallel_map`] drives the slice (or,
    /// for single-slice collections, shard) enumeration, and the result is
    /// identical for every thread count.
    pub fn stream_pair_counts<F>(&self, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        self.stream_pair_counts_with_threads(default_threads(), probe)
    }

    /// [`BlockCollection::stream_pair_counts`] with an explicit worker count
    /// (the result never depends on it — see `tests/determinism.rs`).
    pub fn stream_pair_counts_with_threads<F>(&self, threads: usize, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        let slices = self
            .redundant_pair_count()
            .div_ceil(STREAM_SLICE_TARGET_PAIRS)
            .clamp(1, MAX_STREAM_SLICES as u64) as usize;
        self.stream_pair_counts_sliced(threads, slices, probe)
    }

    /// The streaming counter with an explicit slice count, exposed so tests
    /// can force the multi-slice path on small collections. `slices` only
    /// affects the memory/rescan trade-off, never the counts.
    pub fn stream_pair_counts_sliced<F>(&self, threads: usize, slices: usize, probe: F) -> PairCounts
    where
        F: Fn(&RecordPair) -> bool + Sync,
    {
        if self.blocks.is_empty() {
            return PairCounts::default();
        }
        if slices <= 1 {
            // One slice covering all of pair space: build the sorted shard
            // runs in parallel (exactly as `distinct_pairs` does) and fold
            // them through the merge counter instead of merging into a vector.
            let runs: Vec<Vec<RecordPair>> = if self.blocks.len() > PAIR_SHARD_BLOCKS {
                let shards: Vec<&[Block]> = self.blocks.chunks(PAIR_SHARD_BLOCKS).collect();
                parallel_map(&shards, threads, |shard| sorted_pair_run(shard))
            } else {
                vec![sorted_pair_run(&self.blocks)]
            };
            return merge_count_runs(runs, &probe);
        }

        // Sort each block's members once so that, inside every block, the
        // members owning a slice (as the smaller id of a pair) form one
        // contiguous range — enumeration then touches each pair exactly once
        // across all slices, plus two binary searches per block per slice.
        let sorted_members: Vec<Vec<RecordId>> = parallel_map(&self.blocks, threads, |block| {
            let mut members = block.members().to_vec();
            members.sort_unstable();
            members
        });
        let slices = slices.clamp(1, MAX_STREAM_SLICES);
        let bounds = slice_bounds(&sorted_members, slices);

        let slice_ids: Vec<usize> = (0..slices).collect();
        let counts = parallel_map(&slice_ids, threads, |&slice| {
            let lo = bounds[slice];
            let hi = bounds[slice + 1];
            let mut runs: Vec<Vec<RecordPair>> = Vec::new();
            for shard in sorted_members.chunks(PAIR_SHARD_BLOCKS) {
                let mut pairs: Vec<RecordPair> = Vec::new();
                for members in shard {
                    // Members are sorted and deduplicated, so the pairs whose
                    // *smaller* id falls in [lo, hi) are exactly those anchored
                    // at positions [start, end).
                    let start = members.partition_point(|id| u64::from(id.0) < lo);
                    let end = members.partition_point(|id| u64::from(id.0) < hi);
                    for i in start..end {
                        for j in i + 1..members.len() {
                            if let Some(pair) = RecordPair::new(members[i], members[j]) {
                                pairs.push(pair);
                            }
                        }
                    }
                }
                pairs.sort_unstable();
                pairs.dedup();
                if !pairs.is_empty() {
                    runs.push(pairs);
                }
            }
            merge_count_runs(runs, &probe)
        });
        counts.into_iter().fold(PairCounts::default(), PairCounts::add)
    }

    /// The blocking function θ_B: do the two records share at least one block?
    ///
    /// This scans blocks and is intended for point queries (examples, tests);
    /// bulk evaluation goes through [`BlockCollection::stream_pair_counts`].
    pub fn theta(&self, a: RecordId, b: RecordId) -> bool {
        if a == b {
            return false;
        }
        self.blocks
            .iter()
            .any(|blk| blk.members().contains(&a) && blk.members().contains(&b))
    }

    /// Per-record block membership: record → indices of blocks containing it.
    /// Needed by meta-blocking to build the blocking graph.
    pub fn membership(&self) -> HashMap<RecordId, Vec<usize>> {
        let mut map: HashMap<RecordId, Vec<usize>> = HashMap::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            for &member in block.members() {
                map.entry(member).or_default().push(idx);
            }
        }
        map
    }
}

/// A blocking technique: maps a dataset to a collection of blocks.
///
/// Implemented by the SA-LSH blocker of this crate and by every baseline in
/// `sablock-baselines`, so the evaluation harness can treat them uniformly.
pub trait Blocker {
    /// A short human-readable name used in reports (e.g. `"SA-LSH"`).
    fn name(&self) -> String;

    /// Produces blocks for the dataset.
    fn block(&self, dataset: &Dataset) -> Result<BlockCollection>;
}

impl<B: Blocker + ?Sized> Blocker for Box<B> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        (**self).block(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn block_deduplicates_members_and_counts_pairs() {
        let b = Block::new("k1", vec![rid(1), rid(2), rid(1), rid(3)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.pair_count(), 3);
        assert_eq!(b.pairs().count(), 3);
        assert_eq!(b.key(), "k1");
        assert!(!b.is_empty());
    }

    #[test]
    fn singleton_and_empty_blocks_are_dropped() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(1)]),
            Block::new("b", vec![]),
            Block::new("c", vec![rid(1), rid(2)]),
        ]);
        assert_eq!(collection.num_blocks(), 1);
        let mut collection = BlockCollection::new();
        collection.push(Block::new("solo", vec![rid(9)]));
        assert!(collection.is_empty());
    }

    #[test]
    fn distinct_vs_redundant_pairs() {
        // Two overlapping blocks: {1,2,3} and {2,3,4} share the pair (2,3).
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3)]),
            Block::new("b2", vec![rid(2), rid(3), rid(4)]),
        ]);
        assert_eq!(collection.redundant_pair_count(), 6);
        assert_eq!(collection.num_distinct_pairs(), 5);
        assert!(collection.theta(rid(2), rid(3)));
        assert!(collection.theta(rid(1), rid(3)));
        assert!(!collection.theta(rid(1), rid(4)));
        assert!(!collection.theta(rid(1), rid(1)));
    }

    #[test]
    fn paper_example_block_counts() {
        // Fig. 1: B3 = {{r1,r2,r6}, {r4,r6}, {r3}, {r5}} has 4 distinct pairs;
        // B1 = {{r1,r2,r4,r6}, {r3}, {r5}} has 6; B2 = {{r1,r2,r3,r6}, {r4,r5,r6}} has 9.
        let b1 = BlockCollection::from_blocks(vec![Block::new("x", vec![rid(1), rid(2), rid(4), rid(6)])]);
        assert_eq!(b1.num_distinct_pairs(), 6);
        let b2 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(3), rid(6)]),
            Block::new("y", vec![rid(4), rid(5), rid(6)]),
        ]);
        assert_eq!(b2.num_distinct_pairs(), 9);
        let b3 = BlockCollection::from_blocks(vec![
            Block::new("x", vec![rid(1), rid(2), rid(6)]),
            Block::new("y", vec![rid(4), rid(6)]),
        ]);
        assert_eq!(b3.num_distinct_pairs(), 4);
    }

    #[test]
    fn key_map_construction_is_deterministic() {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        map.insert("z".into(), vec![rid(1), rid(2)]);
        map.insert("a".into(), vec![rid(3), rid(4)]);
        map.insert("solo".into(), vec![rid(5)]);
        let collection = BlockCollection::from_key_map(map);
        assert_eq!(collection.num_blocks(), 2);
        assert_eq!(collection.blocks()[0].key(), "a");
        assert_eq!(collection.blocks()[1].key(), "z");
    }

    #[test]
    fn size_statistics() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2), rid(3), rid(4)]),
            Block::new("b2", vec![rid(5), rid(6)]),
        ]);
        assert_eq!(collection.max_block_size(), 4);
        assert!((collection.mean_block_size() - 3.0).abs() < 1e-12);
        let empty = BlockCollection::new();
        assert_eq!(empty.max_block_size(), 0);
        assert_eq!(empty.mean_block_size(), 0.0);
    }

    #[test]
    fn distinct_pairs_are_sorted_and_deduplicated() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(3), rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(1)]),
            Block::new("b3", vec![rid(9), rid(1)]),
        ]);
        let pairs = collection.distinct_pairs();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted strictly ascending (deduped)");
        assert_eq!(pairs.len() as u64, collection.num_distinct_pairs());
        // (1,2) appears in two blocks but only once in Γ.
        let p12 = RecordPair::new(rid(1), rid(2)).unwrap();
        assert_eq!(pairs.iter().filter(|&&p| p == p12).count(), 1);
    }

    #[test]
    fn sharded_enumeration_matches_single_run() {
        // More blocks than one shard (PAIR_SHARD_BLOCKS) with heavy overlap:
        // the sharded, merged enumeration must equal a single sort-dedup pass.
        let blocks: Vec<Block> = (0..(PAIR_SHARD_BLOCKS * 2 + 7))
            .map(|i| {
                let base = (i % 13) as u32;
                Block::new(format!("b{i}"), vec![rid(base), rid(base + 1), rid(base + 2)])
            })
            .collect();
        let collection = BlockCollection::from_blocks(blocks);
        let reference = sorted_pair_run(collection.blocks());
        assert_eq!(collection.distinct_pairs(), reference);
    }

    #[test]
    fn merge_sorted_dedup_unions_runs() {
        let pair = |a: u32, b: u32| RecordPair::new(rid(a), rid(b)).unwrap();
        let a = vec![pair(0, 1), pair(1, 2), pair(5, 6)];
        let b = vec![pair(0, 2), pair(1, 2), pair(7, 8)];
        let merged = merge_sorted_dedup(a, b);
        assert_eq!(merged, vec![pair(0, 1), pair(0, 2), pair(1, 2), pair(5, 6), pair(7, 8)]);
        assert_eq!(merge_sorted_dedup(vec![], vec![pair(2, 3)]), vec![pair(2, 3)]);
        assert!(merge_sorted_dedup(vec![], vec![]).is_empty());
    }

    #[test]
    fn streaming_counts_match_materialised_enumeration() {
        // Overlap-heavy collection spanning several enumeration shards.
        let blocks: Vec<Block> = (0..(PAIR_SHARD_BLOCKS * 2 + 7))
            .map(|i| {
                let base = (i % 13) as u32;
                Block::new(format!("b{i}"), vec![rid(base), rid(base + 1), rid(base + 2)])
            })
            .collect();
        let collection = BlockCollection::from_blocks(blocks);
        let pairs = collection.distinct_pairs();
        let expected_matching = pairs.iter().filter(|p| p.first().0 % 2 == 0).count() as u64;
        // Every slice count and every thread count yields identical counts.
        for slices in [1, 2, 3, 7, 64] {
            for threads in [1, 4] {
                let counts =
                    collection.stream_pair_counts_sliced(threads, slices, |p| p.first().0 % 2 == 0);
                assert_eq!(counts.distinct, pairs.len() as u64, "slices={slices} threads={threads}");
                assert_eq!(counts.matching, expected_matching, "slices={slices} threads={threads}");
            }
        }
        let auto = collection.stream_pair_counts(|p| p.first().0 % 2 == 0);
        assert_eq!(auto.distinct, pairs.len() as u64);
        assert_eq!(auto.matching, expected_matching);
    }

    #[test]
    fn streaming_counts_handle_degenerate_collections() {
        let empty = BlockCollection::new();
        assert_eq!(empty.stream_pair_counts(|_| true), PairCounts::default());
        assert_eq!(empty.num_distinct_pairs(), 0);
        // Singleton-only input: every block is dropped at construction.
        let singletons = BlockCollection::from_blocks(vec![
            Block::new("a", vec![rid(1)]),
            Block::new("b", vec![rid(2)]),
        ]);
        assert_eq!(singletons.stream_pair_counts_sliced(4, 8, |_| true), PairCounts::default());
        // A collection whose ids all collapse onto one value of pair space
        // still splits safely (the slice count is capped by the id span).
        let narrow = BlockCollection::from_blocks(vec![Block::new("n", vec![rid(5), rid(6)])]);
        let counts = narrow.stream_pair_counts_sliced(4, 64, |_| true);
        assert_eq!(counts, PairCounts { distinct: 1, matching: 1 });
    }

    #[test]
    fn streaming_counts_survive_skewed_id_layouts() {
        // Dense ids plus one outlier near u32::MAX: mass-based boundaries
        // must still spread the work and count exactly.
        let mut blocks: Vec<Block> = (0..40)
            .map(|i| Block::new(format!("d{i}"), vec![rid(i), rid(i + 1), rid(i + 2)]))
            .collect();
        blocks.push(Block::new("outlier", vec![rid(7), rid(u32::MAX - 1)]));
        let collection = BlockCollection::from_blocks(blocks);
        let expected = collection.distinct_pairs().len() as u64;
        for slices in [2usize, 8, 64] {
            let counts = collection.stream_pair_counts_sliced(4, slices, |_| false);
            assert_eq!(counts.distinct, expected, "slices={slices}");
        }
    }

    #[test]
    fn slice_bounds_balance_anchor_mass() {
        // 64 two-member blocks with distinct anchors: 64 units of anchor
        // mass. Four slices must cover everything, stay non-decreasing and
        // put a fair share (here: exactly a quarter) in each slice.
        let members: Vec<Vec<RecordId>> = (0..64u32).map(|i| vec![rid(10 * i), rid(10 * i + 1)]).collect();
        let bounds = slice_bounds(&members, 4);
        assert_eq!(bounds.len(), 5);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), u64::from(10u32 * 63 + 1) + 1);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        for slice in 0..4 {
            let anchored = members
                .iter()
                .flat_map(|m| m.first())
                .filter(|id| (bounds[slice]..bounds[slice + 1]).contains(&u64::from(id.0)))
                .count();
            assert_eq!(anchored, 16, "slice {slice} holds a quarter of the anchor mass");
        }
    }

    #[test]
    fn merge_count_runs_deduplicates_across_runs() {
        let pair = |a: u32, b: u32| RecordPair::new(rid(a), rid(b)).unwrap();
        let runs = vec![
            vec![pair(0, 1), pair(1, 2), pair(5, 6)],
            vec![pair(0, 2), pair(1, 2), pair(7, 8)],
            vec![pair(0, 1), pair(7, 8)],
        ];
        let counts = merge_count_runs(runs, &|p: &RecordPair| p.second().0 >= 6);
        assert_eq!(counts.distinct, 5);
        assert_eq!(counts.matching, 2);
        assert_eq!(merge_count_runs(vec![], &|_: &RecordPair| true), PairCounts::default());
    }

    #[test]
    fn membership_maps_records_to_blocks() {
        let collection = BlockCollection::from_blocks(vec![
            Block::new("b1", vec![rid(1), rid(2)]),
            Block::new("b2", vec![rid(2), rid(3)]),
        ]);
        let membership = collection.membership();
        assert_eq!(membership[&rid(2)], vec![0, 1]);
        assert_eq!(membership[&rid(1)], vec![0]);
        assert!(!membership.contains_key(&rid(9)));
    }
}
