//! # sablock-core — Semantic-Aware LSH Blocking for Entity Resolution
//!
//! This crate implements the primary contribution of Wang, Cui & Liang,
//! *Semantic-Aware Blocking for Entity Resolution* (IEEE TKDE 28(1), 2016):
//! a blocking framework that unifies **textual similarity** (minhash-based
//! locality-sensitive hashing over q-gram shingles) and **semantic
//! similarity** (taxonomy trees + "semhash" signatures) into one LSH pipeline.
//!
//! ## Module map
//!
//! | Paper section | Module |
//! |---|---|
//! | §3 problem definition, γ-robustness | [`robustness`], [`blocking`] |
//! | §4.1 taxonomy trees | [`taxonomy`] |
//! | §4.2 semantic analysis (ζ functions) | [`semantic`] |
//! | §4.3 similarity metric (Eq. 4, Eq. 5) | [`semantic::similarity`] |
//! | §4.4 semantic hashing (Algorithm 1) | [`semantic::semhash`] |
//! | §5.1 minhash signatures | [`minhash`] |
//! | §5.2 integrating semhash, w-way AND/OR | [`lsh::semantic_hash`], [`lsh::salsh`] |
//! | §5.3 parameter tuning | [`tuning`] |
//! | collision-probability model (Fig. 5/6) | [`lsh::probability`] |
//!
//! ## Quick start
//!
//! ```
//! use sablock_core::prelude::*;
//! use sablock_datasets::{CoraConfig, CoraGenerator};
//!
//! let dataset = CoraGenerator::new(CoraConfig::small()).generate().unwrap();
//! let tree = bibliographic_taxonomy();
//! let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
//!
//! let blocker = SaLshBlocker::builder()
//!     .attributes(["title", "authors"])
//!     .qgram(4)
//!     .bands(63)
//!     .rows_per_band(4)
//!     .semantic(SemanticConfig::new(tree, zeta).with_w(2).with_mode(SemanticMode::Or))
//!     .build()
//!     .unwrap();
//!
//! let blocks = blocker.block(&dataset).unwrap();
//! assert!(blocks.num_blocks() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod error;
pub mod incremental;
pub(crate) mod invariants;
pub mod lsh;
pub mod minhash;
pub mod parallel;
pub mod robustness;
pub mod semantic;
pub mod taxonomy;
pub mod tuning;

pub use error::CoreError;

/// Commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use crate::blocking::{Block, BlockCollection, Blocker, EntityTableProbe, PackedProbe, PairCounts};
    pub use crate::error::CoreError;
    pub use crate::incremental::{
        BucketDump, DeltaPairs, IncrementalBlocker, IncrementalSaLshBlocker, IndexDump, IndexView, RunningCounts,
    };
    pub use crate::lsh::probability::{banding_collision_probability, salsh_collision_probability, w_way_probability};
    pub use crate::lsh::salsh::{LshBlocker, SaLshBlocker, SaLshBlockerBuilder};
    pub use crate::lsh::semantic_hash::SemanticMode;
    pub use crate::lsh::SemanticConfig;
    pub use crate::minhash::shingle::RecordShingler;
    pub use crate::minhash::{MinHasher, MinhashConfig};
    pub use crate::semantic::pattern::PatternSemanticFunction;
    pub use crate::semantic::semhash::{SemanticSignature, SemhashFamily};
    pub use crate::semantic::similarity::{concept_similarity, record_semantic_similarity};
    pub use crate::semantic::voter::VoterSemanticFunction;
    pub use crate::semantic::{Interpretation, SemanticFunction};
    pub use crate::taxonomy::bib::{bibliographic_taxonomy, bibliographic_taxonomy_variant, BibConcept};
    pub use crate::taxonomy::voter::voter_taxonomy;
    pub use crate::taxonomy::{ConceptId, TaxonomyTree};
    pub use crate::tuning::{choose_bands_for_target, choose_parameters, SimilarityDistribution, TuningGoal};
}
