//! The lint engine: scope classification, `#[cfg(test)]` region detection,
//! allow-marker parsing and finding suppression.
//!
//! A file is lexed once ([`crate::lexer`]); comments feed the allow-marker
//! scanner and the remaining tokens feed the rules ([`crate::rules`]). Every
//! finding is then matched against the allow markers: a marker suppresses
//! findings of its rule on the marker's own line (trailing-comment form) or
//! on the first code line below it (own-line form), and a marker that
//! suppresses nothing is itself an error — stale allows never accumulate.

use std::fmt;

use crate::lexer::{lex, Token, TokenKind};
use crate::rules;

/// Which part of the workspace a file belongs to; rules opt into scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library sources (`crates/*/src`, root `src/`).
    Lib,
    /// Example binaries (`examples/`).
    Example,
    /// Benchmark sources (`crates/bench/benches`).
    Bench,
    /// Integration tests (`tests/`).
    Test,
}

/// Classifies a workspace-relative path (with `/` separators) into a lint
/// scope; `None` means the file is out of scope (vendored stand-ins, build
/// artefacts).
pub fn classify(path: &str) -> Option<Scope> {
    if path.starts_with("vendor/") || path.starts_with("target/") || path.contains("/target/") {
        return None;
    }
    if path.contains("/benches/") {
        return Some(Scope::Bench);
    }
    if path.starts_with("tests/") || path.contains("/tests/") {
        return Some(Scope::Test);
    }
    if path.starts_with("examples/") || path.contains("/examples/") {
        return Some(Scope::Example);
    }
    if path.starts_with("src/") || path.contains("/src/") {
        return Some(Scope::Lib);
    }
    None
}

/// One lint finding, before suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (a name from [`rules::RULES`], or one of the
    /// engine's own `allow`-hygiene pseudo-rules).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A finding bound to its file, ready for rendering.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// The finding itself.
    pub finding: Finding,
    /// `Some(reason)` when an allow marker suppresses this finding — kept in
    /// the machine-readable output so suppressions stay auditable; only
    /// findings with `allowed == None` fail the build.
    pub allowed: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.finding.rule, self.finding.message)?;
        writeln!(f, "  --> {}:{}:{}", self.file, self.finding.line, self.finding.col)?;
        if let Some(help) = rules::help_for(self.finding.rule) {
            writeln!(f, "   = help: {help}")?;
        }
        Ok(())
    }
}

/// A parsed `// sablock-lint: allow(<rule>): <reason>` marker.
#[derive(Debug)]
struct Allow {
    rule: String,
    reason: String,
    /// Line of the marker comment itself.
    line: u32,
    col: u32,
    /// The code line this marker covers, if any code follows it.
    target_line: Option<u32>,
    used: bool,
}

/// An allow marker naming one of the semantic (call-graph) rules. Single-file
/// token analysis cannot judge whether such a marker is used — only the
/// workspace pass ([`crate::semantic`]) can, so these are handed through.
#[derive(Debug)]
pub struct SemanticAllow {
    /// The semantic rule the marker names.
    pub rule: String,
    /// The marker's stated reason.
    pub reason: String,
    /// Line of the marker comment itself.
    pub line: u32,
    /// Column of the marker comment.
    pub col: u32,
    /// The code line this marker covers, if any code follows it.
    pub target_line: Option<u32>,
    /// Whether the workspace pass found a finding this marker suppresses.
    pub used: bool,
}

const MARKER: &str = "sablock-lint:";

/// Parses one comment's text for an allow marker. Returns `Ok(None)` when the
/// comment contains no marker at all, `Err` with a description when a marker
/// is present but malformed.
fn parse_marker(text: &str) -> Result<Option<(String, String)>, String> {
    let Some(at) = text.find(MARKER) else {
        return Ok(None);
    };
    let rest = text[at + MARKER.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>)` after `sablock-lint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in lint marker".to_string());
    };
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return Err(format!("allow({rule}) is missing its `: <reason>` — every suppression must say why"));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!("allow({rule}) has an empty reason — every suppression must say why"));
    }
    Ok(Some((rule, reason.to_string())))
}

/// The per-file token view handed to rules: code tokens only (comments
/// stripped), with a parallel test-region mask.
pub struct FileTokens<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// The file's lint scope.
    pub scope: Scope,
    /// All non-comment tokens of the file, in order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — whether `tokens[i]` sits inside a `#[cfg(test)]` /
    /// `#[test]` item (such code is exempt from most rules).
    pub in_test: Vec<bool>,
}

impl FileTokens<'_> {
    /// The half-open token range of the statement containing `idx`: expands
    /// left and right to the nearest statement-ish boundary (`;`, `{`, `}`).
    /// Coarse, but statements are exactly the granularity the context
    /// heuristics need.
    pub fn statement_range(&self, idx: usize) -> (usize, usize) {
        let mut start = idx;
        while start > 0 {
            let t = &self.tokens[start - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            start -= 1;
        }
        let mut end = idx;
        while end < self.tokens.len() {
            let t = &self.tokens[end];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            end += 1;
        }
        (start, end)
    }

    /// Whether any identifier in `range` satisfies the predicate.
    pub fn range_has_ident(&self, range: (usize, usize), pred: impl Fn(&str) -> bool) -> bool {
        self.tokens[range.0..range.1]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && pred(&t.text))
    }

    /// Whether `tokens[idx..]` starts with the given identifier/punct pattern
    /// (each pattern entry is matched as an ident when alphanumeric, as a
    /// punct character otherwise).
    pub fn matches_seq(&self, idx: usize, pattern: &[&str]) -> bool {
        pattern.iter().enumerate().all(|(k, want)| {
            self.tokens.get(idx + k).is_some_and(|t| {
                if want.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    t.is_ident(want)
                } else {
                    t.kind == TokenKind::Punct && t.text == *want
                }
            })
        })
    }
}

/// Lower-cased word segments of an identifier, splitting on `_` and on
/// camel-case transitions: `RecordIdOverflow` → `["record", "id",
/// "overflow"]`, `next_id` → `["next", "id"]`.
pub fn ident_segments(ident: &str) -> Vec<String> {
    let mut segments = Vec::new();
    for part in ident.split('_') {
        let mut current = String::new();
        let chars: Vec<char> = part.chars().collect();
        for (i, &c) in chars.iter().enumerate() {
            let boundary = c.is_uppercase()
                && i > 0
                && (chars[i - 1].is_lowercase() || chars.get(i + 1).is_some_and(|n| n.is_lowercase()));
            if boundary && !current.is_empty() {
                segments.push(std::mem::take(&mut current));
            }
            current.extend(c.to_lowercase());
        }
        if !current.is_empty() {
            segments.push(current);
        }
    }
    segments
}

/// Computes the test-region mask over code tokens: ranges covered by a
/// `#[cfg(test)]` or `#[test]` attribute (the attributed item extends to the
/// first top-level `;` or the close of its first top-level brace block).
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    // `#[test]` and `#[cfg(test)]` mark test items;
                    // `#[cfg(not(test))]` is the opposite and must not.
                    saw_test |= t.text == "test";
                    saw_not |= t.text == "not";
                }
                j += 1;
            }
            if saw_test && !saw_not && j < tokens.len() {
                // Skip any further attributes on the same item.
                let mut k = j + 1;
                while k < tokens.len() && tokens[k].is_punct('#') && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0usize;
                    while k < tokens.len() {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // The item extends to the first `;` at depth 0 or to the
                // close of its first depth-0 brace block.
                let start = k;
                let mut brace = 0usize;
                let mut end = start;
                while end < tokens.len() {
                    let t = &tokens[end];
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace = brace.saturating_sub(1);
                        if brace == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && brace == 0 {
                        break;
                    }
                    end += 1;
                }
                for flag in mask.iter_mut().take((end + 1).min(tokens.len())).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Everything single-file analysis produces: token-rule diagnostics
/// (suppressed ones included, flagged via [`Diagnostic::allowed`]), the
/// semantic-rule allow markers for the workspace pass, and the code-token
/// view the semantic parser consumes.
pub struct SourceAnalysis {
    /// Token-rule and allow-hygiene diagnostics, suppressed ones included.
    pub diagnostics: Vec<Diagnostic>,
    /// Allow markers naming semantic rules, for [`crate::semantic`] to judge.
    pub semantic_allows: Vec<SemanticAllow>,
    /// The file's code tokens (comments stripped).
    pub tokens: Vec<Token>,
    /// Per-token `#[cfg(test)]` membership, parallel to `tokens`.
    pub in_test: Vec<bool>,
}

/// Lints one file's source text. `path` must be workspace-relative with `/`
/// separators — it picks the scope ([`classify`]) and labels diagnostics.
/// Returns only the *active* (unsuppressed) diagnostics; see
/// [`analyze_source_full`] for the complete view.
pub fn analyze_source(path: &str, scope: Scope, source: &str) -> Vec<Diagnostic> {
    let mut diagnostics = analyze_source_full(path, scope, source).diagnostics;
    diagnostics.retain(|d| d.allowed.is_none());
    diagnostics
}

/// Full single-file analysis: token rules, allow-marker hygiene, and the raw
/// material (tokens, semantic allows) for the workspace semantic pass.
pub fn analyze_source_full(path: &str, scope: Scope, source: &str) -> SourceAnalysis {
    let all_tokens = lex(source);

    // Split comments (marker scanning) from code (rule input).
    let mut comments: Vec<Token> = Vec::new();
    let mut code: Vec<Token> = Vec::new();
    for token in all_tokens {
        if token.is_comment() {
            comments.push(token);
        } else {
            code.push(token);
        }
    }
    let in_test = test_regions(&code);
    let file = FileTokens { path, scope, tokens: code, in_test };

    let mut findings: Vec<Finding> = Vec::new();

    // Parse allow markers; malformed ones are findings themselves. Markers
    // naming semantic rules are handed through for the workspace pass.
    let mut allows: Vec<Allow> = Vec::new();
    let mut semantic_allows: Vec<SemanticAllow> = Vec::new();
    for comment in &comments {
        // Doc comments are rendered documentation — text like a LINTS.md
        // example quoting the marker syntax must not parse as a directive.
        let is_doc = comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        match parse_marker(&comment.text) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => {
                let is_token_rule = rules::RULES.iter().any(|r| r.name == rule);
                let is_semantic_rule = crate::semantic::RULES.iter().any(|r| r.name == rule);
                if !is_token_rule && !is_semantic_rule {
                    let known: Vec<&str> = rules::RULES
                        .iter()
                        .map(|r| r.name)
                        .chain(crate::semantic::RULES.iter().map(|r| r.name))
                        .collect();
                    findings.push(Finding {
                        rule: "unknown-allow",
                        message: format!(
                            "allow marker names unknown rule `{rule}` (known rules: {})",
                            known.join(", ")
                        ),
                        line: comment.line,
                        col: comment.col,
                    });
                    continue;
                }
                // Own-line markers cover the next code line; trailing markers
                // cover their own line.
                let trailing = file.tokens.iter().any(|t| t.line == comment.line);
                let target_line = if trailing {
                    Some(comment.line)
                } else {
                    file.tokens.iter().find(|t| t.line > comment.line).map(|t| t.line)
                };
                if is_token_rule {
                    allows.push(Allow {
                        rule,
                        reason,
                        line: comment.line,
                        col: comment.col,
                        target_line,
                        used: false,
                    });
                } else {
                    semantic_allows.push(SemanticAllow {
                        rule,
                        reason,
                        line: comment.line,
                        col: comment.col,
                        target_line,
                        used: false,
                    });
                }
            }
            Err(message) => {
                findings.push(Finding {
                    rule: "malformed-allow",
                    message,
                    line: comment.line,
                    col: comment.col,
                });
            }
        }
    }

    // Run every rule that applies to this scope.
    for rule in rules::RULES {
        if (rule.applies)(scope) {
            (rule.check)(&file, &mut findings);
        }
    }

    // Match findings against allow markers; track marker use. Suppressed
    // findings stay in the output, flagged with the marker's reason.
    let mut suppressions: Vec<Option<String>> = Vec::with_capacity(findings.len());
    for finding in &findings {
        let mut reason = None;
        for allow in allows.iter_mut() {
            if allow.rule == finding.rule && allow.target_line == Some(finding.line) {
                allow.used = true;
                reason = Some(allow.reason.clone());
            }
        }
        suppressions.push(reason);
    }
    let mut findings: Vec<(Finding, Option<String>)> =
        findings.into_iter().zip(suppressions).collect();

    // A marker that suppressed nothing is stale — error, never silence.
    // (Semantic-rule markers are judged by the workspace pass instead.)
    for allow in &allows {
        if !allow.used {
            findings.push((
                Finding {
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) suppresses nothing — the violation it covered is gone; remove the marker",
                        allow.rule
                    ),
                    line: allow.line,
                    col: allow.col,
                },
                None,
            ));
        }
    }

    findings.sort_by_key(|(f, _)| (f.line, f.col, f.rule));
    // One diagnostic per (rule, line): a statement can trip several of a
    // rule's detectors at once (e.g. a `for` loop over `.iter()`), and one
    // allow marker covers the whole line anyway.
    findings.dedup_by_key(|(f, _)| (f.line, f.rule));
    let diagnostics = findings
        .into_iter()
        .map(|(finding, allowed)| Diagnostic { file: path.to_string(), finding, allowed })
        .collect();
    SourceAnalysis {
        diagnostics,
        semantic_allows,
        tokens: file.tokens,
        in_test: file.in_test,
    }
}

/// Lints one file, classifying its scope from the path. Returns `None` (no
/// diagnostics) for out-of-scope files.
pub fn analyze_path_source(path: &str, source: &str) -> Vec<Diagnostic> {
    match classify(path) {
        Some(scope) => analyze_source(path, scope, source),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_workspace_paths() {
        assert_eq!(classify("crates/core/src/blocking.rs"), Some(Scope::Lib));
        assert_eq!(classify("src/lib.rs"), Some(Scope::Lib));
        assert_eq!(classify("examples/paper_scale.rs"), Some(Scope::Example));
        assert_eq!(classify("tests/determinism.rs"), Some(Scope::Test));
        assert_eq!(classify("crates/xtask/tests/fixtures.rs"), Some(Scope::Test));
        assert_eq!(classify("crates/bench/benches/micro.rs"), Some(Scope::Bench));
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
    }

    #[test]
    fn ident_segments_split_snake_and_camel() {
        assert_eq!(ident_segments("next_id"), vec!["next", "id"]);
        assert_eq!(ident_segments("RecordIdOverflow"), vec!["record", "id", "overflow"]);
        assert_eq!(ident_segments("valid"), vec!["valid"]);
        assert_eq!(ident_segments("MAX_RECORD_ID"), vec!["max", "record", "id"]);
        assert_eq!(ident_segments("HTTPServer"), vec!["http", "server"]);
    }

    #[test]
    fn marker_parsing_accepts_and_rejects() {
        assert!(parse_marker("// ordinary comment").unwrap().is_none());
        let (rule, reason) =
            parse_marker("// sablock-lint: allow(raw-sentinel): defines the constant").unwrap().unwrap();
        assert_eq!(rule, "raw-sentinel");
        assert_eq!(reason, "defines the constant");
        assert!(parse_marker("// sablock-lint: allow(raw-sentinel)").is_err(), "missing reason");
        assert!(parse_marker("// sablock-lint: allow(raw-sentinel):   ").is_err(), "empty reason");
        assert!(parse_marker("// sablock-lint: deny(x): y").is_err(), "not allow()");
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let source = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}";
        let tokens: Vec<Token> = lex(source).into_iter().filter(|t| !t.is_comment()).collect();
        let mask = test_regions(&tokens);
        let idx_of = |name: &str| tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!mask[idx_of("lib")]);
        assert!(mask[idx_of("helper")]);
        assert!(!mask[idx_of("lib2")]);
    }
}
