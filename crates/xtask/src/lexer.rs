//! A hand-rolled Rust lexer — just enough of the language to drive the
//! token-stream lint rules, with no dependency on `syn` or any other crate
//! (this build environment has no crates.io access).
//!
//! The lexer understands exactly the constructs that would otherwise produce
//! false positives in a substring-grepping linter:
//!
//! * string literals — plain (`"…"`, with escapes), byte (`b"…"`), raw
//!   (`r"…"`, `r#"…"#` with any number of hashes) and raw byte (`br#"…"#`),
//!   so lint patterns *inside* string content never fire;
//! * character and byte-character literals (`'a'`, `'\n'`, `b'x'`),
//!   disambiguated from lifetimes (`'a`, `'static`);
//! * line comments (`//`, `///`, `//!`) and *nested* block comments
//!   (`/* /* … */ */`), preserved as tokens so the allow-marker scanner can
//!   read them;
//! * numeric literals with radix prefixes, `_` separators and type suffixes
//!   (`0xFFFF_FFFFu64`, `1_000`, `1.5e-3`), kept distinct from the ranges and
//!   method calls that can follow an integer (`0..n`, `1.max(2)`);
//! * raw identifiers (`r#fn`), kept distinct from raw strings.
//!
//! Every token carries a 1-based `line:col` position so rule findings render
//! as rustc-style diagnostics.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `for`, `as`, `r#fn`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0xFFFF_FFFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.5`, `2e10`, `1.`).
    Float,
    /// A string literal of any flavour (plain, byte, raw, raw byte).
    Str,
    /// A character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (nesting handled).
    BlockComment,
    /// Any single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token: kind, verbatim text and 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's verbatim source text.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether the token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether the token is a punctuation character equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// The numeric value of an integer-literal token, if it parses: underscores
/// are stripped, radix prefixes honoured and any type suffix ignored, so
/// `0xFFFF_FFFFu64` and `4294967295` compare equal.
pub fn int_value(text: &str) -> Option<u128> {
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, body) = match digits.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &digits[2..]),
        [b'0', b'o' | b'O', ..] => (8, &digits[2..]),
        [b'0', b'b' | b'B', ..] => (2, &digits[2..]),
        _ => (10, digits.as_str()),
    };
    let end = body
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(body.len(), |(i, _)| i);
    u128::from_str_radix(&body[..end], radix).ok()
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `cond` holds, appending them to `text`.
    fn take_while(&mut self, text: &mut String, cond: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !cond(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token { kind, text, line, col });
    }

    /// Whether the input at the current position starts a raw string body:
    /// zero or more `#` characters followed by `"`. `offset` skips the `r`
    /// (and optional `b`) prefix already matched by the caller.
    fn raw_string_follows(&self, offset: usize) -> bool {
        let mut ahead = offset;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    /// Lexes a raw string starting at the `r` (prefix characters such as the
    /// leading `b` must already be in `text`).
    fn raw_string(&mut self, mut text: String, line: u32, col: u32) {
        text.push(self.bump().expect("caller matched 'r'"));
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            text.push(self.bump().expect("peeked"));
            hashes += 1;
        }
        text.push(self.bump().expect("caller verified opening quote")); // the `"`
        loop {
            match self.bump() {
                None => break, // unterminated; tolerate at EOF
                Some('"') => {
                    text.push('"');
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some('#') {
                        text.push(self.bump().expect("peeked"));
                        matched += 1;
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Lexes a plain (escaped) string starting at the `"` (prefixes already
    /// in `text`).
    fn quoted_string(&mut self, mut text: String, line: u32, col: u32) {
        text.push(self.bump().expect("caller matched opening quote"));
        loop {
            match self.bump() {
                None => break, // unterminated; tolerate at EOF
                Some('\\') => {
                    text.push('\\');
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Lexes a character literal starting at the `'` (prefixes already in
    /// `text`). The caller has established this is not a lifetime.
    fn char_literal(&mut self, mut text: String, line: u32, col: u32) {
        text.push(self.bump().expect("caller matched opening quote"));
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    /// Lexes a `'…` token: a lifetime when an identifier follows without a
    /// closing quote, a character literal otherwise.
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        // A lifetime is `'` + identifier not followed by `'`; everything
        // else (`'a'`, `'\n'`, `'\''`) is a character literal.
        if self.peek(1).is_some_and(is_ident_start) && self.peek(1) != Some('\\') {
            let mut ahead = 2;
            while self.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            if self.peek(ahead) != Some('\'') {
                let mut text = String::new();
                text.push(self.bump().expect("caller matched quote"));
                self.take_while(&mut text, is_ident_continue);
                self.push(TokenKind::Lifetime, text, line, col);
                return;
            }
        }
        self.char_literal(String::new(), line, col);
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().expect("caller matched '/'"));
        text.push(self.bump().expect("caller matched '*'"));
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push(self.bump().expect("peeked"));
                    text.push(self.bump().expect("peeked"));
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push(self.bump().expect("peeked"));
                    text.push(self.bump().expect("peeked"));
                }
                (Some(_), _) => {
                    text.push(self.bump().expect("peeked"));
                }
                (None, _) => break, // unterminated; tolerate at EOF
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut kind = TokenKind::Int;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
            text.push(self.bump().expect("peeked"));
            text.push(self.bump().expect("peeked"));
            self.take_while(&mut text, |c| c.is_ascii_hexdigit() || c == '_');
        } else {
            self.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            // A `.` continues the literal only when it cannot start a range
            // (`0..n`) or a method call on the literal (`1.max(2)`).
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let is_range = after == Some('.');
                let is_method = after.is_some_and(is_ident_start);
                if !is_range && !is_method {
                    kind = TokenKind::Float;
                    text.push(self.bump().expect("peeked"));
                    self.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
                }
            }
            if matches!(self.peek(0), Some('e' | 'E')) {
                let exp_digit = match self.peek(1) {
                    Some('+' | '-') => self.peek(2).is_some_and(|c| c.is_ascii_digit()),
                    Some(c) => c.is_ascii_digit(),
                    None => false,
                };
                if exp_digit {
                    kind = TokenKind::Float;
                    text.push(self.bump().expect("peeked"));
                    if matches!(self.peek(0), Some('+' | '-')) {
                        text.push(self.bump().expect("peeked"));
                    }
                    self.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`) — consumed into the literal so
        // the suffix never masquerades as a standalone identifier.
        self.take_while(&mut text, is_ident_continue);
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        self.take_while(&mut text, is_ident_continue);
        self.push(TokenKind::Ident, text, line, col);
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == 'r' && (self.peek(1) == Some('"') || self.raw_string_follows(1)) {
                self.raw_string(String::new(), line, col);
            } else if c == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#fn`: lex as one identifier token.
                let mut text = String::new();
                text.push(self.bump().expect("peeked")); // r
                text.push(self.bump().expect("peeked")); // #
                self.take_while(&mut text, is_ident_continue);
                self.push(TokenKind::Ident, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_follows(2) {
                let mut text = String::new();
                text.push(self.bump().expect("peeked")); // b
                self.raw_string(text, line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                let mut text = String::new();
                text.push(self.bump().expect("peeked")); // b
                self.quoted_string(text, line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                let mut text = String::new();
                text.push(self.bump().expect("peeked")); // b
                self.char_literal(text, line, col);
            } else if c == '\'' {
                self.lifetime_or_char(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident(line, col);
            } else if c == '"' {
                self.quoted_string(String::new(), line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
        self.tokens
    }
}

/// Lexes Rust source into a flat token stream (comments included).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_puncts_and_positions() {
        let tokens = lex("let x = a.b;\nfoo()");
        assert!(tokens[0].is_ident("let"));
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert!(tokens[3].is_ident("a"));
        assert!(tokens[4].is_punct('.'));
        let foo = tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (2, 1));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let tokens = kinds(r#"let s = "a \" b"; x"#);
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Str && t == "\"a \\\" b\""));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let source = "let s = r#\"contains \"quoted\" text\"#; after";
        let tokens = kinds(source);
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("quoted")));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "after"));
        // Zero-hash raw string and raw byte string.
        let tokens = kinds("r\"plain\" br##\"double\"## tail");
        assert_eq!(tokens.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "tail"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let tokens = kinds("let r#fn = 1;");
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let tokens = kinds("before /* outer /* inner */ still-comment */ after");
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::BlockComment && t.contains("inner")));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "after"));
        // The nested close must not terminate the outer comment early.
        assert!(!tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "still"));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let tokens = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }");
        assert_eq!(tokens.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(tokens.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 3);
        let tokens = kinds("'static b'x'");
        assert_eq!(tokens[0].0, TokenKind::Lifetime);
        assert_eq!(tokens[1].0, TokenKind::Char);
    }

    #[test]
    fn numbers_with_radix_separators_and_suffixes() {
        let tokens = kinds("0xFFFF_FFFF 1_000u64 2.5 1e9 0..n 1.max(2)");
        assert_eq!(int_value("0xFFFF_FFFF"), Some(0xFFFF_FFFF));
        assert_eq!(int_value("4294967295"), Some(0xFFFF_FFFF));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Float && t == "2.5"));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Float && t == "1e9"));
        // `0..n` stays an int plus range puncts; `1.max(2)` an int plus call.
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Int && t == "0"));
        assert!(tokens.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let tokens = lex("code // trailing comment\nnext");
        assert!(tokens.iter().any(|t| t.kind == TokenKind::LineComment && t.text.contains("trailing")));
        let next = tokens.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 2);
    }

    #[test]
    fn lint_patterns_inside_strings_are_inert() {
        // The content mentions HashMap iteration and u32::MAX, but only as
        // string data — none of it may surface as identifier tokens.
        let source = r##"let s = r#"for x in map.iter() { u32::MAX }"#; let t = "std::thread";"##;
        let tokens = lex(source);
        assert!(!tokens.iter().any(|t| t.is_ident("iter")));
        assert!(!tokens.iter().any(|t| t.is_ident("MAX")));
        assert!(!tokens.iter().any(|t| t.is_ident("thread")));
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("\"never closed").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }
}
