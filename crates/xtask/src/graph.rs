//! Workspace symbol table and over-approximate call graph.
//!
//! Resolution is heuristic by design: calls are matched by name (free
//! functions), by `Qualifier::name` (paths, with `Self` mapped to the
//! enclosing impl type and `use … as …` renames unfolded), and by method
//! name within the workspace's entire impl universe (`receiver.name(…)`
//! links to *every* workspace method of that name when the receiver type is
//! unknown — an over-approximation that can only add edges, never hide
//! them). Calls that resolve to nothing inside the workspace (std, vendored
//! crates) become **unknown** terminals: the analysis trusts external code
//! not to violate workspace protocols, and `docs/LINTS.md` documents that
//! trade-off.
//!
//! Everything iterates in `BTreeMap` order or input (path-sorted) order, so
//! graph construction and every downstream diagnostic are deterministic.

use std::collections::BTreeMap;

use crate::engine::Scope;
use crate::lexer::Token;
use crate::parser::{CallTarget, ParsedFile};

/// One workspace file loaded for semantic analysis: its code tokens (the
/// comment-stripped stream), `#[cfg(test)]` mask, and parsed items.
#[derive(Debug)]
pub struct ModelFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The lint scope the path classifies into.
    pub scope: Scope,
    /// Code tokens (comments stripped) — positions index into this.
    pub tokens: Vec<Token>,
    /// Per-token `#[cfg(test)]` membership, parallel to `tokens`.
    pub in_test: Vec<bool>,
    /// The item-level parse of the file.
    pub parsed: ParsedFile,
}

/// The whole workspace as loaded files, path-sorted.
#[derive(Debug, Default)]
pub struct Model {
    /// All files, sorted by path.
    pub files: Vec<ModelFile>,
}

/// A function node: indexes into `model.files` and that file's `parsed.fns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnKey {
    /// Index into [`Model::files`].
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
}

/// One resolved call edge, keeping the call site for path reporting.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Global node index of the callee.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// The workspace call graph over non-test functions.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Node order: files in path order, items in file order.
    pub nodes: Vec<FnKey>,
    /// Reverse lookup from (file, item) to global node index.
    pub index: BTreeMap<FnKey, usize>,
    /// Resolved out-edges per node, call-site order, deduped per callee.
    pub edges: Vec<Vec<Edge>>,
    /// Names of calls per node that resolved to nothing in the workspace
    /// ("may call anything" terminals), deduped and sorted.
    pub unknown: Vec<Vec<String>>,
}

impl CallGraph {
    /// Human-readable name for a node: `Qualifier::name` or `name`.
    pub fn display_name(&self, model: &Model, node: usize) -> String {
        let key = self.nodes[node];
        let item = &model.files[key.file].parsed.fns[key.item];
        match &item.qualifier {
            Some(q) => format!("{q}::{}", item.name),
            None => item.name.clone(),
        }
    }

    /// The `file:line` position of a node's definition.
    pub fn position(&self, model: &Model, node: usize) -> (String, u32, u32) {
        let key = self.nodes[node];
        let file = &model.files[key.file];
        let item = &file.parsed.fns[key.item];
        (file.path.clone(), item.line, item.col)
    }
}

/// Builds the call graph for a model. Functions inside `#[cfg(test)]`
/// regions are excluded both as nodes and as resolution candidates, so test
/// helpers can never satisfy (or pollute) a production call edge.
pub fn build(model: &Model) -> CallGraph {
    let mut graph = CallGraph::default();
    for (file_idx, file) in model.files.iter().enumerate() {
        for (item_idx, item) in file.parsed.fns.iter().enumerate() {
            if item.in_test {
                continue;
            }
            let key = FnKey { file: file_idx, item: item_idx };
            graph.index.insert(key, graph.nodes.len());
            graph.nodes.push(key);
        }
    }

    // Symbol tables, all name-keyed with deterministic candidate order.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (node, key) in graph.nodes.iter().enumerate() {
        let item = &model.files[key.file].parsed.fns[key.item];
        match &item.qualifier {
            None => free_by_name.entry(&item.name).or_default().push(node),
            Some(qualifier) => {
                by_qualified.entry((qualifier, &item.name)).or_default().push(node);
                if item.has_self {
                    methods_by_name.entry(&item.name).or_default().push(node);
                }
            }
        }
    }

    for (node, key) in graph.nodes.iter().enumerate() {
        let file = &model.files[key.file];
        let item = &file.parsed.fns[key.item];
        // `use … as …` renames: local alias -> final real segment.
        let aliases: BTreeMap<&str, &str> = file
            .parsed
            .uses
            .iter()
            .filter_map(|u| {
                let last = u.path.last()?;
                (!u.is_glob && u.alias != *last).then_some((u.alias.as_str(), last.as_str()))
            })
            .collect();
        let mut out: Vec<Edge> = Vec::new();
        let mut unknown: Vec<String> = Vec::new();
        for call in &item.calls {
            let candidates: Vec<usize> = match &call.target {
                CallTarget::Free { name } => {
                    let real = aliases.get(name.as_str()).copied().unwrap_or(name.as_str());
                    let all = free_by_name.get(real).cloned().unwrap_or_default();
                    // Prefer same-file definitions when any exist: a file's
                    // own helper shadows same-named helpers elsewhere.
                    let local: Vec<usize> =
                        all.iter().copied().filter(|&n| graph.nodes[n].file == key.file).collect();
                    if local.is_empty() { all } else { local }
                }
                CallTarget::Qualified { qualifier, name } => {
                    let qualifier = if qualifier == "Self" {
                        item.qualifier.as_deref().unwrap_or("Self")
                    } else {
                        aliases.get(qualifier.as_str()).copied().unwrap_or(qualifier.as_str())
                    };
                    let direct = by_qualified.get(&(qualifier, name.as_str())).cloned().unwrap_or_default();
                    if direct.is_empty() {
                        // A module-qualified free fn (`wal::recover(…)`).
                        free_by_name.get(name.as_str()).cloned().unwrap_or_default()
                    } else {
                        direct
                    }
                }
                CallTarget::Method { name, on_self } => {
                    let own = item.qualifier.as_deref().and_then(|q| {
                        by_qualified.get(&(q, name.as_str())).cloned()
                    });
                    match (on_self, own) {
                        // `self.name(…)` with a matching method on the
                        // enclosing type resolves exactly there.
                        (true, Some(own)) if !own.is_empty() => own,
                        // Otherwise: every workspace method of that name.
                        _ => methods_by_name.get(name.as_str()).cloned().unwrap_or_default(),
                    }
                }
            };
            if candidates.is_empty() {
                unknown.push(match &call.target {
                    CallTarget::Free { name } => name.clone(),
                    CallTarget::Qualified { qualifier, name } => format!("{qualifier}::{name}"),
                    CallTarget::Method { name, .. } => format!(".{name}"),
                });
            } else {
                for callee in candidates {
                    if !out.iter().any(|e| e.callee == callee) {
                        out.push(Edge { callee, line: call.line, col: call.col });
                    }
                }
            }
        }
        unknown.sort();
        unknown.dedup();
        debug_assert_eq!(node, graph.edges.len());
        graph.edges.push(out);
        graph.unknown.push(unknown);
    }
    graph
}

/// BFS over resolved edges from `entries`. Returns, per node, the
/// predecessor edge on one shortest path from an entry (`usize::MAX`
/// predecessor marks an entry itself), or `None` when unreachable.
pub fn reachable_from(graph: &CallGraph, entries: &[usize]) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &entry in entries {
        if parent[entry].is_none() {
            parent[entry] = Some(usize::MAX);
            queue.push_back(entry);
        }
    }
    while let Some(node) = queue.pop_front() {
        for edge in &graph.edges[node] {
            if parent[edge.callee].is_none() {
                parent[edge.callee] = Some(node);
                queue.push_back(edge.callee);
            }
        }
    }
    parent
}

/// The call path from an entry point to `node`, as display names.
pub fn path_to(graph: &CallGraph, model: &Model, parents: &[Option<usize>], node: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cursor = node;
    loop {
        chain.push(graph.display_name(model, cursor));
        match parents[cursor] {
            Some(prev) if prev != usize::MAX => cursor = prev,
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Renders the call graph as Graphviz DOT (the `--graph-dot` artifact).
/// Nodes are `file-stem::Qualifier::name`; dashed self-loops mark functions
/// with unresolved ("may call anything") calls.
pub fn to_dot(model: &Model, graph: &CallGraph) -> String {
    let label = |node: usize| -> String {
        let key = graph.nodes[node];
        let path = &model.files[key.file].path;
        let stem = path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs");
        format!("{stem}::{}", graph.display_name(model, node))
    };
    let mut out = String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for node in 0..graph.nodes.len() {
        let shape = if graph.unknown[node].is_empty() { "" } else { ", style=dashed" }.to_string();
        out.push_str(&format!("  \"{}\" [label=\"{}\"{shape}];\n", label(node), label(node)));
    }
    for (node, edges) in graph.edges.iter().enumerate() {
        for edge in edges {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", label(node), label(edge.callee)));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn model_of(files: &[(&str, &str)]) -> Model {
        let mut model = Model::default();
        for (path, source) in files {
            let tokens: Vec<Token> = lex(source).into_iter().filter(|t| !t.is_comment()).collect();
            let in_test = crate::engine::test_regions(&tokens);
            let parsed = parse_file(&tokens, &in_test);
            model.files.push(ModelFile {
                path: (*path).to_string(),
                scope: Scope::Lib,
                tokens,
                in_test,
                parsed,
            });
        }
        model
    }

    fn node_named(model: &Model, graph: &CallGraph, name: &str) -> usize {
        (0..graph.nodes.len())
            .find(|&n| graph.display_name(model, n) == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    fn callees(model: &Model, graph: &CallGraph, name: &str) -> Vec<String> {
        let node = node_named(model, graph, name);
        graph.edges[node].iter().map(|e| graph.display_name(model, e.callee)).collect()
    }

    #[test]
    fn free_calls_prefer_same_file_then_any_file() {
        let model = model_of(&[
            ("crates/a/src/one.rs", "fn helper() {} fn caller() { helper(); other(); }"),
            ("crates/a/src/two.rs", "fn helper() {} fn other() {}"),
        ]);
        let graph = build(&model);
        assert_eq!(callees(&model, &graph, "caller"), vec!["helper", "other"]);
        let helper = node_named(&model, &graph, "caller");
        let target = graph.edges[helper][0].callee;
        assert_eq!(graph.nodes[target].file, 0, "same-file helper wins");
    }

    #[test]
    fn self_and_qualified_calls_resolve_within_the_impl_universe() {
        let model = model_of(&[(
            "crates/a/src/svc.rs",
            r#"
            struct Service;
            impl Service {
                fn outer(&self) { self.inner(); Self::assoc(); Other::build(); }
                fn inner(&self) {}
                fn assoc() {}
            }
            struct Other;
            impl Other { fn build() {} }
            "#,
        )]);
        let graph = build(&model);
        assert_eq!(
            callees(&model, &graph, "Service::outer"),
            vec!["Service::inner", "Service::assoc", "Other::build"]
        );
    }

    #[test]
    fn unknown_receiver_methods_over_approximate_and_std_calls_are_unknown() {
        let model = model_of(&[(
            "crates/a/src/m.rs",
            r#"
            struct A; struct B;
            impl A { fn go(&self) {} }
            impl B { fn go(&self) {} }
            fn driver(x: &A) { x.go(); x.missing(); }
            "#,
        )]);
        let graph = build(&model);
        assert_eq!(callees(&model, &graph, "driver"), vec!["A::go", "B::go"]);
        let driver = node_named(&model, &graph, "driver");
        assert_eq!(graph.unknown[driver], vec![".missing"]);
    }

    #[test]
    fn use_renames_unfold_for_free_and_qualified_calls() {
        let model = model_of(&[
            (
                "crates/a/src/caller.rs",
                "use crate::lib2::{real_fn as short, Widget as W};\nfn go() { short(); W::new(); }",
            ),
            ("crates/a/src/lib2.rs", "fn real_fn() {} struct Widget; impl Widget { fn new() {} }"),
        ]);
        let graph = build(&model);
        assert_eq!(callees(&model, &graph, "go"), vec!["real_fn", "Widget::new"]);
    }

    #[test]
    fn test_functions_are_neither_nodes_nor_candidates() {
        let model = model_of(&[(
            "crates/a/src/t.rs",
            r#"
            fn prod() { shared(); }
            fn shared() {}
            #[cfg(test)]
            mod tests {
                fn shared() {}
                #[test]
                fn check() { super::prod(); }
            }
            "#,
        )]);
        let graph = build(&model);
        assert_eq!(graph.nodes.len(), 2, "test fns excluded");
        assert_eq!(callees(&model, &graph, "prod"), vec!["shared"]);
    }

    #[test]
    fn reachability_reports_a_shortest_path() {
        let model = model_of(&[(
            "crates/a/src/chain.rs",
            "fn a() { b(); } fn b() { c(); } fn c() {} fn island() { c(); }",
        )]);
        let graph = build(&model);
        let entry = node_named(&model, &graph, "a");
        let parents = reachable_from(&graph, &[entry]);
        let c = node_named(&model, &graph, "c");
        assert_eq!(path_to(&graph, &model, &parents, c), vec!["a", "b", "c"]);
        let island = node_named(&model, &graph, "island");
        assert!(parents[island].is_none());
    }

    #[test]
    fn dot_output_is_deterministic_and_marks_unknown_calls() {
        let model = model_of(&[(
            "crates/a/src/d.rs",
            "fn a() { b(); external(); } fn b() {}",
        )]);
        let graph = build(&model);
        let dot = to_dot(&model, &graph);
        assert_eq!(dot, to_dot(&model, &build(&model)));
        assert!(dot.contains("\"d::a\" -> \"d::b\";"));
        assert!(dot.contains("style=dashed"));
    }
}
