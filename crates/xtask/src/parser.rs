//! An item-level parser layered on the token stream: just enough structure
//! — modules, `use` trees, free functions, impl/trait methods, call
//! expressions and panic sites — for the call-graph semantic rules, with no
//! dependency on `syn` (this build environment has no crates.io access).
//!
//! The parser is deliberately *shallow*: it never builds an expression tree.
//! It walks the code-token stream (comments stripped), recognises item
//! boundaries by keyword + balanced delimiters, and extracts three kinds of
//! facts per function:
//!
//! * **call sites** — `name(…)`, `Qualifier::name(…)`, `.name(…)` (turbofish
//!   handled), each with a source position;
//! * **panic sites** — `panic!`/`unreachable!`/`todo!`/`unimplemented!`
//!   macros, `.unwrap()` / `.expect(…)`, and `x[i]` indexing (an ident,
//!   `)` or `]` directly before the `[`, so attributes, `vec![…]`, array
//!   types and slice patterns never match);
//! * **signature facts** — the enclosing impl's self type or trait name,
//!   whether the function takes `self`, and whether it sits in a
//!   `#[cfg(test)]` region.
//!
//! Anything the parser cannot classify is simply skipped — the resolver
//! ([`crate::graph`]) treats calls it cannot resolve as "may call anything",
//! so a parse gap degrades precision, never soundness of the diagnostics'
//! suppression model.

use crate::lexer::{Token, TokenKind};

/// Rust keywords — identifiers that can precede `(` or `[` without being a
/// call or an indexing expression (`if (…)`, `match (…)`, slice patterns
/// after `let`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "union", "unsafe", "use",
    "where", "while", "yield",
];

/// Whether an identifier is a Rust keyword (per the `KEYWORDS` table).
pub fn is_keyword(ident: &str) -> bool {
    KEYWORDS.contains(&ident)
}

/// One leaf of a `use` tree: the name it binds locally and the path it
/// resolves to. `use a::b::{c, d as e, f::*};` yields three items — `c`,
/// `e` (a rename of `a::b::d`) and a glob over `a::b::f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    /// The locally visible name (`e` for `d as e`; the last path segment
    /// otherwise; the parent segment for `self`; empty for a glob).
    pub alias: String,
    /// The full path segments, rename resolved (`["a", "b", "d"]`).
    pub path: Vec<String>,
    /// Whether this leaf is a `*` glob import.
    pub is_glob: bool,
    /// 1-based line of the leaf's last segment.
    pub line: u32,
}

/// How a call expression names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A bare call: `name(…)`.
    Free {
        /// The called name.
        name: String,
    },
    /// A path-qualified call: `Qualifier::name(…)` (the qualifier is the
    /// path segment directly before the name — a type, module or `Self`).
    Qualified {
        /// The last path segment before the name.
        qualifier: String,
        /// The called name.
        name: String,
    },
    /// A method call: `receiver.name(…)`.
    Method {
        /// The called name.
        name: String,
        /// Whether the receiver is literally `self`.
        on_self: bool,
    },
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based line of the called name.
    pub line: u32,
    /// 1-based column of the called name.
    pub col: u32,
}

/// The kind of a potential panic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `x[i]` / `x[a..b]` indexing (out-of-bounds panics).
    Index,
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What kind of panic construct this is.
    pub kind: PanicKind,
    /// The construct, as written (`panic!`, `.unwrap()`, `candidates[…]`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function (free, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The enclosing impl's self type or trait's name, if any.
    pub qualifier: Option<String>,
    /// Whether the parameter list contains a `self` receiver.
    pub has_self: bool,
    /// Whether the function has a body (`false` for trait required methods).
    pub has_body: bool,
    /// Whether the function sits in a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// The module path from the crate file root (`mod` nesting), `/`-joined.
    pub module: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// 1-based column of the `fn` name.
    pub col: u32,
    /// Half-open token range of the body, braces included; `(0, 0)` when
    /// there is no body.
    pub body: (usize, usize),
    /// Call expressions in the body (nested items excluded).
    pub calls: Vec<CallSite>,
    /// Panic sites in the body (nested items excluded).
    pub panics: Vec<PanicSite>,
}

/// The parsed view of one file: its `use` leaves and its functions.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All `use` leaves, file order.
    pub uses: Vec<UseItem>,
    /// All functions, file order (nested ones included).
    pub fns: Vec<FnItem>,
}

/// Parses one file's code-token stream (comments stripped) with its
/// `#[cfg(test)]` mask — exactly the shape `engine::FileTokens` holds.
pub fn parse_file(tokens: &[Token], in_test: &[bool]) -> ParsedFile {
    let mut parsed = ParsedFile::default();
    let mut parser = Parser { tokens, in_test, out: &mut parsed };
    parser.scan_items(0, tokens.len(), None, "");
    // Event extraction needs every nested fn's range excluded from its
    // parent, so it runs after the full item scan.
    let ranges: Vec<(usize, usize)> = parsed.fns.iter().map(|f| f.body).collect();
    for item in &mut parsed.fns {
        if !item.has_body {
            continue;
        }
        let nested: Vec<(usize, usize)> = ranges
            .iter()
            .copied()
            .filter(|&(start, end)| start > item.body.0 && end <= item.body.1 && (start, end) != item.body)
            .collect();
        extract_events(tokens, item, &nested);
    }
    parsed
}

struct Parser<'a> {
    tokens: &'a [Token],
    in_test: &'a [bool],
    out: &'a mut ParsedFile,
}

impl Parser<'_> {
    /// Scans `[start, end)` for items; `qualifier` is the enclosing impl's
    /// self type / trait name, `module` the `mod` nesting path.
    fn scan_items(&mut self, start: usize, end: usize, qualifier: Option<&str>, module: &str) {
        let mut i = start;
        while i < end {
            let token = &self.tokens[i];
            if token.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            match token.text.as_str() {
                "use" => i = self.scan_use(i + 1, end),
                "fn" => i = self.scan_fn(i, end, qualifier, module),
                "impl" => i = self.scan_impl(i, end, module),
                "trait" => i = self.scan_trait(i, end, module),
                "mod" => i = self.scan_mod(i, end, module),
                "struct" | "enum" | "union" => i = self.skip_struct_like(i + 1, end),
                "macro_rules" => i = self.skip_macro_rules(i + 1, end),
                _ => i += 1,
            }
        }
    }

    /// Parses the `use` tree starting after the `use` keyword; returns the
    /// index past the closing `;`.
    fn scan_use(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        let mut prefix: Vec<String> = Vec::new();
        self.scan_use_tree(&mut i, end, &mut prefix);
        while i < end && !self.tokens[i].is_punct(';') {
            i += 1;
        }
        i + 1
    }

    /// Recursive descent over one `use` subtree; `i` is left on the token
    /// that ends the subtree (`,`, `}`, or `;`).
    fn scan_use_tree(&mut self, i: &mut usize, end: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        let mut last_leaf: Option<(String, u32)> = None;
        while *i < end {
            let token = &self.tokens[*i];
            if token.is_punct(';') || token.is_punct(',') || token.is_punct('}') {
                break;
            }
            if token.is_punct('{') {
                *i += 1;
                loop {
                    self.scan_use_tree(i, end, prefix);
                    if *i >= end || !self.tokens[*i].is_punct(',') {
                        break;
                    }
                    *i += 1;
                }
                if *i < end && self.tokens[*i].is_punct('}') {
                    *i += 1;
                }
                last_leaf = None;
                continue;
            }
            if token.is_punct('*') {
                self.out.uses.push(UseItem {
                    alias: String::new(),
                    path: prefix.clone(),
                    is_glob: true,
                    line: token.line,
                });
                last_leaf = None;
                *i += 1;
                continue;
            }
            if token.is_ident("as") {
                if let Some(next) = self.tokens.get(*i + 1) {
                    if next.kind == TokenKind::Ident {
                        self.out.uses.push(UseItem {
                            alias: next.text.clone(),
                            path: prefix.clone(),
                            is_glob: false,
                            line: next.line,
                        });
                        last_leaf = None;
                        *i += 2;
                        continue;
                    }
                }
                *i += 1;
                continue;
            }
            if token.kind == TokenKind::Ident {
                if token.text == "self" {
                    // `use a::b::{self}` binds `b`.
                    if let Some(parent) = prefix.last().cloned() {
                        last_leaf = Some((parent, token.line));
                    }
                } else {
                    prefix.push(token.text.clone());
                    last_leaf = Some((token.text.clone(), token.line));
                }
                *i += 1;
                continue;
            }
            // `::` and anything else between segments.
            *i += 1;
        }
        if let Some((alias, line)) = last_leaf {
            self.out.uses.push(UseItem { alias, path: prefix.clone(), is_glob: false, line });
        }
        prefix.truncate(depth_at_entry);
    }

    /// Parses one `fn` item starting at the `fn` keyword; registers it and
    /// recurses into its body for nested items. Returns the index past the
    /// body (or past the `;` for a bodiless trait method).
    fn scan_fn(&mut self, fn_kw: usize, end: usize, qualifier: Option<&str>, module: &str) -> usize {
        let Some(name_token) = self.tokens.get(fn_kw + 1) else {
            return fn_kw + 1;
        };
        // `fn(usize) -> bool` function-pointer types have no name: skip them.
        if name_token.kind != TokenKind::Ident {
            return fn_kw + 1;
        }
        let name = name_token.text.clone();
        let mut i = fn_kw + 2;
        // Generic parameters.
        if i < end && self.tokens[i].is_punct('<') {
            i = skip_angles(self.tokens, i, end);
        }
        // Parameter list: find the matching `)`, noting a `self` receiver.
        let mut has_self = false;
        if i < end && self.tokens[i].is_punct('(') {
            let mut depth = 0usize;
            while i < end {
                let t = &self.tokens[i];
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if depth == 1 && t.is_ident("self") {
                    has_self = true;
                }
                i += 1;
            }
        }
        // Return type / where clause: up to the body `{` or a `;`.
        while i < end && !self.tokens[i].is_punct('{') && !self.tokens[i].is_punct(';') {
            i += 1;
        }
        let in_test = self.in_test.get(fn_kw).copied().unwrap_or(false);
        if i >= end || self.tokens[i].is_punct(';') {
            self.out.fns.push(FnItem {
                name,
                qualifier: qualifier.map(str::to_string),
                has_self,
                has_body: false,
                in_test,
                module: module.to_string(),
                line: name_token.line,
                col: name_token.col,
                body: (0, 0),
                calls: Vec::new(),
                panics: Vec::new(),
            });
            return (i + 1).min(end);
        }
        let body_end = skip_braces(self.tokens, i, end);
        self.out.fns.push(FnItem {
            name,
            qualifier: qualifier.map(str::to_string),
            has_self,
            has_body: true,
            in_test,
            module: module.to_string(),
            line: name_token.line,
            col: name_token.col,
            body: (i, body_end),
            calls: Vec::new(),
            panics: Vec::new(),
        });
        // Nested items (fns inside fns, inner modules) still register.
        self.scan_items(i + 1, body_end.saturating_sub(1), None, module);
        body_end
    }

    /// Parses one `impl` block header and scans its body with the self
    /// type as qualifier. Returns the index past the block.
    fn scan_impl(&mut self, impl_kw: usize, end: usize, module: &str) -> usize {
        let mut i = impl_kw + 1;
        if i < end && self.tokens[i].is_punct('<') {
            i = skip_angles(self.tokens, i, end);
        }
        // Collect depth-0 path idents until the block opens; `for` switches
        // from the trait to the self type.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while i < end && !self.tokens[i].is_punct('{') {
            let t = &self.tokens[i];
            if t.is_punct('<') {
                i = skip_angles(self.tokens, i, end);
                continue;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                // The rest is bounds; the self type is already collected.
            } else if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                if saw_for {
                    after_for.push(t.text.clone());
                } else {
                    before_for.push(t.text.clone());
                }
            }
            i += 1;
        }
        let self_type = if saw_for { after_for.last() } else { before_for.last() };
        let self_type = self_type.cloned();
        if i >= end {
            return end;
        }
        let block_end = skip_braces(self.tokens, i, end);
        self.scan_items(i + 1, block_end.saturating_sub(1), self_type.as_deref(), module);
        block_end
    }

    /// Parses one `trait` block; default methods get the trait name as
    /// qualifier. Returns the index past the block.
    fn scan_trait(&mut self, trait_kw: usize, end: usize, module: &str) -> usize {
        let Some(name_token) = self.tokens.get(trait_kw + 1) else {
            return trait_kw + 1;
        };
        if name_token.kind != TokenKind::Ident {
            return trait_kw + 1;
        }
        let name = name_token.text.clone();
        let mut i = trait_kw + 2;
        while i < end && !self.tokens[i].is_punct('{') && !self.tokens[i].is_punct(';') {
            if self.tokens[i].is_punct('<') {
                i = skip_angles(self.tokens, i, end);
            } else {
                i += 1;
            }
        }
        if i >= end || self.tokens[i].is_punct(';') {
            return (i + 1).min(end);
        }
        let block_end = skip_braces(self.tokens, i, end);
        self.scan_items(i + 1, block_end.saturating_sub(1), Some(&name), module);
        block_end
    }

    /// Parses `mod name { … }` (recursing with the extended module path) or
    /// skips `mod name;`. Returns the index past the item.
    fn scan_mod(&mut self, mod_kw: usize, end: usize, module: &str) -> usize {
        let Some(name_token) = self.tokens.get(mod_kw + 1) else {
            return mod_kw + 1;
        };
        if name_token.kind != TokenKind::Ident {
            return mod_kw + 1;
        }
        let i = mod_kw + 2;
        if i < end && self.tokens[i].is_punct(';') {
            return i + 1;
        }
        if i >= end || !self.tokens[i].is_punct('{') {
            return i;
        }
        let inner = if module.is_empty() {
            name_token.text.clone()
        } else {
            format!("{module}/{}", name_token.text)
        };
        let block_end = skip_braces(self.tokens, i, end);
        self.scan_items(i + 1, block_end.saturating_sub(1), None, &inner);
        block_end
    }

    /// Skips a struct/enum/union item: to its `{…}` block or its `;`.
    fn skip_struct_like(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct('<') {
                i = skip_angles(self.tokens, i, end);
                continue;
            }
            if t.is_punct('{') {
                return skip_braces(self.tokens, i, end);
            }
            if t.is_punct(';') {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Skips `macro_rules! name { … }` entirely — macro bodies are token
    /// soup the item scanner must not read.
    fn skip_macro_rules(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        while i < end && !self.tokens[i].is_punct('{') {
            i += 1;
        }
        if i >= end {
            return end;
        }
        skip_braces(self.tokens, i, end)
    }
}

/// Skips a balanced `<…>` group starting at an opening `<`; returns the
/// index past the matching `>`. (`>>` lexes as two tokens, so nested
/// generics close one level per token.)
fn skip_angles(tokens: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            // Safety valve: `<` was a comparison, not generics.
            return i;
        }
        i += 1;
    }
    end
}

/// Skips a balanced `{…}` block starting at an opening `{`; returns the
/// index past the matching `}`.
fn skip_braces(tokens: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// The index of the `(` that makes `tokens[name_idx]` a call, if any:
/// either directly after the name or after a `::<…>` turbofish.
fn call_paren(tokens: &[Token], name_idx: usize, end: usize) -> Option<usize> {
    let next = name_idx + 1;
    if next < end && tokens[next].is_punct('(') {
        return Some(next);
    }
    if next + 2 < end
        && tokens[next].is_punct(':')
        && tokens[next + 1].is_punct(':')
        && tokens[next + 2].is_punct('<')
    {
        let after = skip_angles(tokens, next + 2, end);
        if after < end && tokens[after].is_punct('(') {
            return Some(after);
        }
    }
    None
}

/// Extracts call and panic sites from `item`'s body, skipping the token
/// ranges of items nested inside it.
fn extract_events(tokens: &[Token], item: &mut FnItem, nested: &[(usize, usize)]) {
    let (start, end) = item.body;
    let mut i = start;
    while i < end {
        if let Some(&(_, nested_end)) = nested.iter().find(|&&(s, e)| i >= s && i < e) {
            i = nested_end;
            continue;
        }
        let token = &tokens[i];
        // Indexing: `x[…]` with an ident, `)`, `]` or `?` directly before
        // the `[`. Attributes (`#[…]`), macros (`vec![…]`), array types
        // (`: [u8; 4]`) and slice patterns (`let [a, b] = …`) all fail the
        // previous-token test.
        if token.is_punct('[') && i > start {
            let prev = &tokens[i - 1];
            let indexes = (prev.kind == TokenKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.is_punct('?');
            if indexes {
                item.panics.push(PanicSite {
                    kind: PanicKind::Index,
                    what: format!("{}[…]", prev.text),
                    line: token.line,
                    col: token.col,
                });
            }
            i += 1;
            continue;
        }
        if token.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Panic macros. `assert!`/`debug_assert!` are deliberately not
        // panic sites: the check-invariants sanitizer uses them as its
        // reporting mechanism.
        if i + 1 < end && tokens[i + 1].is_punct('!') {
            if matches!(token.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") {
                item.panics.push(PanicSite {
                    kind: PanicKind::Macro,
                    what: format!("{}!", token.text),
                    line: token.line,
                    col: token.col,
                });
            }
            i += 2;
            continue;
        }
        let Some(paren) = call_paren(tokens, i, end) else {
            i += 1;
            continue;
        };
        let after_dot = i >= 1 && tokens[i - 1].is_punct('.');
        if after_dot && (token.text == "unwrap" || token.text == "expect") {
            item.panics.push(PanicSite {
                kind: if token.text == "unwrap" { PanicKind::Unwrap } else { PanicKind::Expect },
                what: format!(".{}()", token.text),
                line: token.line,
                col: token.col,
            });
            i = paren + 1;
            continue;
        }
        if is_keyword(&token.text) && token.text != "Self" {
            i += 1;
            continue;
        }
        let target = if after_dot {
            let on_self = i >= 2 && tokens[i - 2].is_ident("self");
            CallTarget::Method { name: token.text.clone(), on_self }
        } else if i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokenKind::Ident
        {
            CallTarget::Qualified { qualifier: tokens[i - 3].text.clone(), name: token.text.clone() }
        } else if token.text == "Self" {
            // `Self(…)` tuple-struct construction, not a call.
            i = paren + 1;
            continue;
        } else {
            CallTarget::Free { name: token.text.clone() }
        };
        item.calls.push(CallSite { target, line: token.line, col: token.col });
        i = paren + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(source: &str) -> ParsedFile {
        let tokens: Vec<Token> = lex(source).into_iter().filter(|t| !t.is_comment()).collect();
        let in_test = vec![false; tokens.len()];
        parse_file(&tokens, &in_test)
    }

    #[test]
    fn free_fns_methods_and_trait_defaults() {
        let source = r#"
            fn alpha() { beta(); }
            impl Widget {
                fn beta(&self) -> usize { self.gamma() }
                fn gamma(&self) -> usize { 1 }
            }
            trait Render {
                fn required(&self);
                fn fallback(&self) { self.required(); }
            }
        "#;
        let parsed = parse(source);
        let names: Vec<(String, Option<String>, bool)> =
            parsed.fns.iter().map(|f| (f.name.clone(), f.qualifier.clone(), f.has_body)).collect();
        assert_eq!(
            names,
            vec![
                ("alpha".into(), None, true),
                ("beta".into(), Some("Widget".into()), true),
                ("gamma".into(), Some("Widget".into()), true),
                ("required".into(), Some("Render".into()), false),
                ("fallback".into(), Some("Render".into()), true),
            ]
        );
        assert!(parsed.fns[1].has_self);
        assert!(!parsed.fns[0].has_self);
        assert_eq!(parsed.fns[0].calls.len(), 1);
        assert!(matches!(&parsed.fns[0].calls[0].target, CallTarget::Free { name } if name == "beta"));
        assert!(
            matches!(&parsed.fns[1].calls[0].target, CallTarget::Method { name, on_self: true } if name == "gamma")
        );
    }

    #[test]
    fn impl_headers_pick_the_self_type() {
        let source = r#"
            impl fmt::Display for Report { fn fmt(&self) {} }
            impl<'a, T: Clone> Cursor<'a, T> { fn advance(&mut self) {} }
            impl From<u32> for Wrapper { fn from(x: u32) -> Self { Wrapper(x) } }
        "#;
        let parsed = parse(source);
        let quals: Vec<Option<String>> = parsed.fns.iter().map(|f| f.qualifier.clone()).collect();
        assert_eq!(
            quals,
            vec![Some("Report".into()), Some("Cursor".into()), Some("Wrapper".into())]
        );
        // `Wrapper(x)` is tuple construction, not a call; `from` has no self.
        assert!(!parsed.fns[2].has_self);
    }

    #[test]
    fn use_trees_with_globs_and_renames() {
        let parsed = parse("use a::b::{c, d as e, f::*, self};\nuse x::y;\n");
        let leaves: Vec<(String, Vec<String>, bool)> =
            parsed.uses.iter().map(|u| (u.alias.clone(), u.path.clone(), u.is_glob)).collect();
        assert_eq!(
            leaves,
            vec![
                ("c".into(), vec!["a".into(), "b".into(), "c".into()], false),
                ("e".into(), vec!["a".into(), "b".into(), "d".into()], false),
                (String::new(), vec!["a".into(), "b".into(), "f".into()], true),
                ("b".into(), vec!["a".into(), "b".into()], false),
                ("y".into(), vec!["x".into(), "y".into()], false),
            ]
        );
    }

    #[test]
    fn panic_sites_are_classified_and_false_positives_excluded() {
        let source = r#"
            fn risky(xs: &[u32], i: usize) -> u32 {
                let v = vec![1, 2];
                let [_a, _b] = [0u8, 1];
                let _t: [u8; 4] = [0; 4];
                let first = xs.first().unwrap();
                let second = xs.get(1).expect("has two");
                if i > xs.len() { panic!("oob"); }
                assert!(i < xs.len());
                xs[i] + v[0] + first + second
            }
        "#;
        let parsed = parse(source);
        let kinds: Vec<PanicKind> = parsed.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PanicKind::Unwrap, PanicKind::Expect, PanicKind::Macro, PanicKind::Index, PanicKind::Index]
        );
        // `unwrap_or_else` and chained non-panicking calls never match.
        let benign = parse("fn ok(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }");
        assert!(benign.fns[0].panics.is_empty());
    }

    #[test]
    fn calls_resolve_shapes_including_turbofish_and_qualified_paths() {
        let source = r#"
            fn driver(rows: Vec<u32>) {
                helper(1);
                Widget::build(2);
                rows.iter().collect::<Vec<_>>();
                self_like.finish();
                crate::wal::recover(3);
            }
        "#;
        let parsed = parse(source);
        let shapes: Vec<String> = parsed.fns[0]
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free { name } => format!("free:{name}"),
                CallTarget::Qualified { qualifier, name } => format!("qual:{qualifier}::{name}"),
                CallTarget::Method { name, on_self } => format!("method:{name}:{on_self}"),
            })
            .collect();
        assert_eq!(
            shapes,
            vec![
                "free:helper",
                "qual:Widget::build",
                "method:iter:false",
                "method:collect:false",
                "method:finish:false",
                "qual:wal::recover",
            ]
        );
    }

    #[test]
    fn nested_fns_keep_their_events_out_of_the_parent() {
        let source = r#"
            fn outer() {
                fn inner(xs: &[u8]) -> u8 { xs[0] }
                inner(&[1]);
            }
        "#;
        let parsed = parse(source);
        let outer = parsed.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = parsed.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.panics.is_empty(), "{:?}", outer.panics);
        assert_eq!(inner.panics.len(), 1);
        assert!(matches!(&outer.calls[0].target, CallTarget::Free { name } if name == "inner"));
    }

    #[test]
    fn modules_nest_and_macro_bodies_are_skipped() {
        let source = r#"
            mod outer {
                mod inner { fn deep() {} }
                fn shallow() {}
            }
            macro_rules! noise { () => { fn phantom() {} }; }
            fn top() {}
        "#;
        let parsed = parse(source);
        let mods: Vec<(String, String)> =
            parsed.fns.iter().map(|f| (f.name.clone(), f.module.clone())).collect();
        assert_eq!(
            mods,
            vec![
                ("deep".into(), "outer/inner".into()),
                ("shallow".into(), "outer".into()),
                ("top".into(), String::new()),
            ]
        );
    }
}
