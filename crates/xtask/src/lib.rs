//! `xtask` — the workspace determinism linter (`cargo xtask lint`).
//!
//! Every headline number this reproduction pins (the 236,744,750 LSH /
//! 56,156,606 SA-LSH paper-scale pair counts, byte-identical 1-vs-N-thread
//! output, per-batch deltas that sum exactly to one-shot metrics) rests on
//! source-level invariants that `rustc` cannot enforce: ordered iteration on
//! output paths, checked record-id narrowing, parallelism confined to
//! `core::parallel`, and the named `MAX_RECORD_ID` sentinel. This crate is a
//! dependency-free static-analysis pass over the workspace that enforces
//! them at CI time, long before a golden test at paper scale could notice.
//!
//! Structure:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (strings, raw strings, chars,
//!   nested block comments) producing a position-tagged token stream;
//! * [`engine`] — scope classification, `#[cfg(test)]` region masking,
//!   `// sablock-lint: allow(<rule>): <reason>` markers (unused allows are
//!   errors) and diagnostic assembly;
//! * [`rules`] — the five project-specific rules; see `docs/LINTS.md`.
//!
//! The dynamic complement is the `check-invariants` cargo feature of
//! `sablock_core`, which asserts at runtime what these rules cannot prove
//! statically (run ordering, delta disjointness, tombstone consistency).

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use engine::{analyze_path_source, analyze_source, classify, Diagnostic, Scope};

/// Recursively collects the workspace's lintable `.rs` files (relative to
/// `root`), skipping `vendor/`, `target/` and hidden directories. Paths come
/// back sorted for deterministic diagnostic order.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every in-scope file under `root`; returns all diagnostics sorted by
/// (file, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    for path in collect_workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(scope) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        diagnostics.extend(analyze_source(&rel, scope, &source));
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.finding.line, a.finding.col).cmp(&(b.file.as_str(), b.finding.line, b.finding.col))
    });
    Ok(diagnostics)
}
