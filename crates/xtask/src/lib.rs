//! `xtask` — the workspace static-analysis pass (`cargo xtask lint` /
//! `cargo xtask analyze`).
//!
//! Every headline number this reproduction pins (the 236,744,750 LSH /
//! 56,156,606 SA-LSH paper-scale pair counts, byte-identical 1-vs-N-thread
//! output, per-batch deltas that sum exactly to one-shot metrics) rests on
//! source-level invariants that `rustc` cannot enforce: ordered iteration on
//! output paths, checked record-id narrowing, parallelism confined to
//! `core::parallel`, and the named `MAX_RECORD_ID` sentinel. Since PR 9 the
//! service layer adds *protocol* invariants that span function and file
//! boundaries — append-before-apply WAL ordering, a single lock-acquisition
//! order, no panics on request paths, temp+fsync+rename for durable files.
//! This crate is a dependency-free static-analysis pass over the workspace
//! that enforces both kinds at CI time, long before a golden test at paper
//! scale (or a crash in production) could notice.
//!
//! Structure:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (strings, raw strings, chars,
//!   nested block comments) producing a position-tagged token stream;
//! * [`engine`] — scope classification, `#[cfg(test)]` region masking,
//!   `// sablock-lint: allow(<rule>): <reason>` markers (unused allows are
//!   errors) and diagnostic assembly;
//! * [`rules`] — the token-stream rules; see `docs/LINTS.md`;
//! * [`parser`] — an item-level parser on the same lexer: modules, `use`
//!   trees, functions, impl/trait methods, call expressions, panic sites;
//! * [`graph`] — the workspace symbol table and over-approximate call graph;
//! * [`semantic`] — the four interprocedural rules riding that graph.
//!
//! The dynamic complement is the `check-invariants` cargo feature
//! (`sablock_core` run ordering / delta disjointness / tombstone
//! consistency; `sablock_serve` lock-acquisition-order guard), which asserts
//! at runtime what these rules cannot prove statically.

#![warn(missing_docs)]

pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

use std::path::{Path, PathBuf};

pub use engine::{analyze_path_source, analyze_source, classify, Diagnostic, Scope};

use engine::{analyze_source_full, Finding, SemanticAllow};
use graph::{CallGraph, Model, ModelFile};

/// Recursively collects the workspace's lintable `.rs` files (relative to
/// `root`), skipping `vendor/`, `target/`, `fixtures/` (the analyzer's
/// deliberately-broken test workspaces) and hidden directories. Paths come
/// back sorted for deterministic diagnostic order.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The result of a full workspace analysis: every diagnostic (suppressed
/// ones included, flagged via [`Diagnostic::allowed`]) plus the semantic
/// model and call graph behind them (for `--graph-dot`).
pub struct WorkspaceAnalysis {
    /// All diagnostics, sorted by (file, line, col); only those with
    /// `allowed == None` should fail a build.
    pub diagnostics: Vec<Diagnostic>,
    /// The parsed library files the semantic pass analyzed.
    pub model: Model,
    /// The call graph built over `model`.
    pub graph: CallGraph,
}

impl WorkspaceAnalysis {
    /// The active (unsuppressed) diagnostics.
    pub fn active(&self) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none()).collect()
    }
}

/// Analyzes a set of in-memory sources as one workspace: the token rules
/// per file, then the semantic pass over every `Lib`-scope file. `sources`
/// are (workspace-relative path, contents) pairs; out-of-scope paths are
/// ignored. This is the core both [`lint_workspace_all`] and the fixture
/// tests drive.
pub fn analyze_sources(sources: &[(String, String)]) -> WorkspaceAnalysis {
    let mut sorted: Vec<&(String, String)> = sources.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut model = Model::default();
    let mut allows: Vec<Vec<SemanticAllow>> = Vec::new();
    for (rel, source) in sorted {
        let Some(scope) = classify(rel) else { continue };
        let analysis = analyze_source_full(rel, scope, source);
        diagnostics.extend(analysis.diagnostics);
        if scope == Scope::Lib {
            let parsed = parser::parse_file(&analysis.tokens, &analysis.in_test);
            model.files.push(ModelFile {
                path: rel.clone(),
                scope,
                tokens: analysis.tokens,
                in_test: analysis.in_test,
                parsed,
            });
            allows.push(analysis.semantic_allows);
        } else {
            // Semantic rules only run over library code, so a semantic-rule
            // allow anywhere else can never suppress anything: stale.
            for allow in analysis.semantic_allows {
                diagnostics.push(Diagnostic {
                    file: rel.clone(),
                    finding: Finding {
                        rule: "unused-allow",
                        message: format!(
                            "allow({}) suppresses nothing — semantic rules only apply to \
                             library sources; remove the marker",
                            allow.rule
                        ),
                        line: allow.line,
                        col: allow.col,
                    },
                    allowed: None,
                });
            }
        }
    }
    let call_graph = graph::build(&model);
    diagnostics.extend(semantic::run(&model, &call_graph, &mut allows));
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.finding.line, a.finding.col, a.finding.rule).cmp(&(
            b.file.as_str(),
            b.finding.line,
            b.finding.col,
            b.finding.rule,
        ))
    });
    WorkspaceAnalysis { diagnostics, model, graph: call_graph }
}

/// Reads and analyzes every in-scope file under `root` (token rules plus
/// the semantic pass); the complete, suppression-annotated view.
pub fn lint_workspace_all(root: &Path) -> std::io::Result<WorkspaceAnalysis> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    Ok(analyze_sources(&sources))
}

/// Lints every in-scope file under `root` (token and semantic rules);
/// returns only the active diagnostics, sorted by (file, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut analysis = lint_workspace_all(root)?;
    analysis.diagnostics.retain(|d| d.allowed.is_none());
    Ok(analysis.diagnostics)
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as the machine-readable `--json` document: one
/// finding object per line, suppressions kept with their reasons. The shape
/// is pinned by a golden test — bump `version` on any change.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        let reason = match &d.allowed {
            Some(reason) => format!("\"{}\"", json_escape(reason)),
            None => "null".to_string(),
        };
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"allowed\": {}, \"allow_reason\": {}}}",
            json_escape(d.finding.rule),
            json_escape(&d.file),
            d.finding.line,
            d.finding.col,
            json_escape(&d.finding.message),
            d.allowed.is_some(),
            reason
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
