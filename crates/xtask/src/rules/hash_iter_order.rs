//! `hash-iter-order`: iterating or draining a `std::collections::HashMap` /
//! `HashSet` in library code without an adjacent sort.
//!
//! Every output path of this workspace is pinned byte-identical across runs
//! and thread counts; `HashMap` iteration order (SipHash with a random seed)
//! is different on every process start, so any hash-order-dependent value
//! that escapes a function is a nondeterminism bug — exactly the class the
//! PR-1 `GroundTruth` fix and the `from_key_map` sort exist for. The
//! deterministic `StableHashMap`/`StableHashSet` aliases (seeded FxHash) are
//! exempt.
//!
//! Detection is a light intra-file dataflow: bindings whose declared type or
//! constructor names `HashMap`/`HashSet` are tracked, and iteration-flavoured
//! method calls on them (or `for … in` loops over them) fire unless a sort —
//! or a collect into an ordered container — appears in the same statement or
//! within the next few lines.

use crate::engine::{FileTokens, Finding};
use crate::lexer::TokenKind;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that expose or consume iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers whose presence marks the order as restored or irrelevant:
/// explicit sorts, or collection into an ordered container.
const ORDER_RESTORERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "radix_sort_packed",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// How many lines below the iterating statement a sort still counts as
/// "adjacent".
const SORT_WINDOW_LINES: u32 = 8;

fn is_hash_type(ident: &str) -> bool {
    HASH_TYPES.contains(&ident)
}

/// Collects the names bound to hash-typed values in this file: `name:
/// HashMap<…>` (lets with ascription, fn params, struct fields) and `let
/// [mut] name = HashMap::new()/with_capacity/default/from(…)`.
fn hash_typed_names(file: &FileTokens<'_>) -> Vec<String> {
    let tokens = &file.tokens;
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        // `name : … HashMap …` up to a declaration boundary.
        if tokens[i].kind == TokenKind::Ident && tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            // Skip `::` paths — `x::y` is not a type ascription.
            if tokens.get(i + 2).is_some_and(|t| t.is_punct(':')) || (i > 0 && tokens[i - 1].is_punct(':')) {
                continue;
            }
            let mut j = i + 2;
            while j < tokens.len() && j < i + 24 {
                let t = &tokens[j];
                if t.is_punct('=') || t.is_punct(';') || t.is_punct(',') || t.is_punct(')') || t.is_punct('{') {
                    break;
                }
                if t.kind == TokenKind::Ident && is_hash_type(&t.text) {
                    names.push(tokens[i].text.clone());
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = … HashMap :: new/with_capacity/default/from`.
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            if !tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            let (_, stmt_end) = file.statement_range(j + 2);
            let initialised = tokens[j + 2..stmt_end].windows(4).any(|w| {
                w[0].kind == TokenKind::Ident
                    && is_hash_type(&w[0].text)
                    && w[1].is_punct(':')
                    && w[2].is_punct(':')
                    && matches!(w[3].text.as_str(), "new" | "with_capacity" | "default" | "from")
            });
            if initialised {
                names.push(name.text.clone());
            }
        }
    }
    names
}

/// Whether an order-restoring identifier appears inside `range` or within
/// [`SORT_WINDOW_LINES`] lines after it.
fn order_restored(file: &FileTokens<'_>, range: (usize, usize)) -> bool {
    if file.range_has_ident(range, |name| ORDER_RESTORERS.contains(&name)) {
        return true;
    }
    let last_line = file.tokens.get(range.1.saturating_sub(1)).map_or(0, |t| t.line);
    file.tokens[range.1..]
        .iter()
        .take_while(|t| t.line <= last_line + SORT_WINDOW_LINES)
        .any(|t| t.kind == TokenKind::Ident && ORDER_RESTORERS.contains(&t.text.as_str()))
}

pub(super) fn check(file: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    let tracked = hash_typed_names(file);
    let tokens = &file.tokens;
    let is_tracked = |name: &str| tracked.iter().any(|t| t == name) || is_hash_type(name);

    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        let token = &tokens[i];

        // `receiver.iter()` — receiver is a tracked binding, `self.field`
        // with a tracked field, or a HashMap/HashSet path expression.
        let method_call = token.kind == TokenKind::Ident
            && ITER_METHODS.contains(&token.text.as_str())
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens[i - 2].kind == TokenKind::Ident
            && is_tracked(&tokens[i - 2].text)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));

        // `for pat in <expr> {` where the loop expression mentions a tracked
        // binding or the hash types directly.
        let for_loop = token.is_ident("for") && {
            let mut j = i + 1;
            let mut in_idx = None;
            while j < tokens.len() && j < i + 40 {
                if tokens[j].is_ident("in") {
                    in_idx = Some(j);
                    break;
                }
                if tokens[j].is_punct('{') || tokens[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            in_idx.is_some_and(|in_idx| {
                let mut k = in_idx + 1;
                let mut found = false;
                while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                    if tokens[k].kind == TokenKind::Ident && is_tracked(&tokens[k].text) {
                        found = true;
                        break;
                    }
                    k += 1;
                }
                found
            })
        };

        if !(method_call || for_loop) {
            continue;
        }
        let range = file.statement_range(i);
        if order_restored(file, range) {
            continue;
        }
        findings.push(Finding {
            rule: "hash-iter-order",
            message: format!(
                "{} a HashMap/HashSet in library code without an adjacent sort — iteration order is \
                 nondeterministic across runs",
                if for_loop { "`for` loop over" } else { "iterating" }
            ),
            line: token.line,
            col: token.col,
        });
    }
}
