//! `unwrap-in-lib`: `unwrap()` / `expect()` on fallible I/O or parse paths
//! in library code.
//!
//! The workspace has typed error enums (`CoreError`, `DatasetError`,
//! `EvalError`) precisely so that file reads, environment lookups and text
//! parsing fail with context instead of a panic deep inside a blocking run.
//! A blanket unwrap ban would be noise (lock poisoning, "peeked" invariants,
//! infallible formatting) — the rule therefore fires only when the enclosing
//! statement shows I/O or parsing flavour.

use crate::engine::{FileTokens, Finding};

/// Identifiers that mark a statement as doing I/O or parsing.
const FALLIBLE_MARKERS: &[&str] = &[
    "read",
    "read_to_string",
    "read_dir",
    "read_line",
    "write",
    "create",
    "create_dir_all",
    "open",
    "remove_file",
    "File",
    "OpenOptions",
    "fs",
    "stdin",
    "stdout",
    "stderr",
    "parse",
    "from_str",
    "from_utf8",
    "var",
    "canonicalize",
    "metadata",
];

pub(super) fn check(file: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        let token = &tokens[i];
        let is_panicky = (token.is_ident("unwrap") || token.is_ident("expect"))
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_panicky {
            continue;
        }
        let range = file.statement_range(i);
        if !file.range_has_ident(range, |name| FALLIBLE_MARKERS.contains(&name)) {
            continue;
        }
        findings.push(Finding {
            rule: "unwrap-in-lib",
            message: format!(
                "`.{}()` on an I/O/parse path in library code — propagate a typed error instead of \
                 panicking in production",
                token.text
            ),
            line: token.line,
            col: token.col,
        });
    }
}
