//! `lossy-id-cast`: `as u32` / `as u64` casts in record-id-flavoured
//! statements.
//!
//! The PR-5 hazard this guards: a record index silently truncated by `as
//! u32` can land on `u32::MAX`, which packs into the `u64::MAX`
//! exhausted-run sentinel of the loser-tree merge and corrupts pair counts
//! without any error. Checked conversions ([`RecordId::try_from_index`],
//! `u32::try_from`) surface the overflow as a typed error instead. `as u64`
//! is included because widening an id and then re-narrowing elsewhere is the
//! same bug split across two lines — id flow should stay in checked or
//! `From`-based conversions throughout.
//!
//! The heuristic: the cast's enclosing statement must mention a
//! record-id-flavoured identifier (`RecordId`, `EntityId`, `ConceptId`,
//! `MAX_RECORD_ID`, or any identifier with an `id`/`record` word segment).
//! Statements casting lengths, hashes or histogram digits stay silent.

use crate::engine::{FileTokens, Finding};
use crate::rules::is_id_flavoured;

pub(super) fn check(file: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        if !tokens[i].is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else { continue };
        if !(target.is_ident("u32") || target.is_ident("u64")) {
            continue;
        }
        // `u64::from(x)` / `u32::try_from(x)` never lex as `as`; reaching
        // here means a genuine `as` cast. Fire only in id-flavoured context.
        let range = file.statement_range(i);
        if !file.range_has_ident(range, is_id_flavoured) {
            continue;
        }
        findings.push(Finding {
            rule: "lossy-id-cast",
            message: format!(
                "`as {}` on a record-id-flavoured expression — a silent truncation here can alias the \
                 u32::MAX merge sentinel (use RecordId::try_from_index / try_from / From)",
                target.text
            ),
            line: tokens[i].line,
            col: tokens[i].col,
        });
    }
}
