//! `thread-confinement`: direct `std::thread` use outside `core::parallel`.
//!
//! Determinism across thread counts holds because every parallel path in the
//! workspace goes through `core::parallel` — `parallel_map` /
//! `parallel_map_mut` (chunk in input order, stitch in input order),
//! `join_all` (results in spawn order), or the bounded `worker_pool` /
//! `JobQueue` pair the service front-end runs on — and sizes itself via
//! `resolve_threads`. A stray `std::thread::spawn` elsewhere would create an
//! execution order the determinism tests cannot pin, and a hand-held
//! `JoinHandle` is the telltale of exactly that. The rule fires on any
//! `std::thread` path, `thread::…` call, or `JoinHandle` type mention in
//! every scope — tests included, since a racy test is a flaky test — except
//! inside `crates/core/src/parallel.rs` itself.

use crate::engine::{FileTokens, Finding};

/// The one module allowed to touch `std::thread` directly.
const CONFINED_TO: &str = "crates/core/src/parallel.rs";

pub(super) fn check(file: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    if file.path == CONFINED_TO {
        return;
    }
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.is_ident("JoinHandle") {
            findings.push(Finding {
                rule: "thread-confinement",
                message: "`JoinHandle` held outside core::parallel — spawn through the sanctioned \
                          confinement points (parallel_map/parallel_map_mut, join_all, or \
                          worker_pool/JobQueue), which own their joins"
                    .to_string(),
                line: token.line,
                col: token.col,
            });
            continue;
        }
        if !token.is_ident("thread") {
            continue;
        }
        // `std :: thread` or `thread :: <anything>` — both directions catch
        // `use std::thread;` followed by `thread::spawn(…)`.
        let qualified = i >= 3 && file.matches_seq(i - 3, &["std", ":", ":", "thread"]);
        let path_head = file.matches_seq(i, &["thread", ":", ":"]);
        if !(qualified || path_head) {
            continue;
        }
        findings.push(Finding {
            rule: "thread-confinement",
            message: "direct `std::thread` use outside core::parallel — parallelism must go through \
                      the sanctioned confinement points (parallel_map/resolve_threads, join_all, \
                      worker_pool/JobQueue) to stay deterministic across thread counts"
                .to_string(),
            line: token.line,
            col: token.col,
        });
    }
}
