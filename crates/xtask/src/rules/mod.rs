//! The lint rules and their registry.
//!
//! Each rule is a pure function over one file's code-token stream
//! ([`FileTokens`]): it pushes [`Finding`]s and never does I/O. Rules opt
//! into scopes (library, example, bench, test) so that, for instance, a
//! boundary test may construct `RecordId(u32::MAX)` without noise while the
//! same expression in library code is an error. See `docs/LINTS.md` for the
//! full catalogue with rationale and allow guidance.

use crate::engine::{FileTokens, Finding, Scope};

mod hash_iter_order;
mod lossy_id_cast;
mod raw_sentinel;
mod thread_confinement;
mod unwrap_in_lib;

/// One registered lint rule.
pub struct Rule {
    /// The rule's kebab-case name, as used in diagnostics and allow markers.
    pub name: &'static str,
    /// Whether the rule runs over files of the given scope.
    pub applies: fn(Scope) -> bool,
    /// The check itself.
    pub check: fn(&FileTokens<'_>, &mut Vec<Finding>),
    /// One-line remediation guidance appended to diagnostics.
    pub help: &'static str,
}

fn lib_only(scope: Scope) -> bool {
    scope == Scope::Lib
}

fn lib_example_bench(scope: Scope) -> bool {
    matches!(scope, Scope::Lib | Scope::Example | Scope::Bench)
}

fn everywhere(_scope: Scope) -> bool {
    true
}

/// All registered rules, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-iter-order",
        applies: lib_only,
        check: hash_iter_order::check,
        help: "HashMap/HashSet iteration order is nondeterministic: sort the result, collect into a \
               BTreeMap/BTreeSet, use StableHashMap with sorted output, or add `// sablock-lint: \
               allow(hash-iter-order): <why order cannot reach output>`",
    },
    Rule {
        name: "lossy-id-cast",
        applies: lib_example_bench,
        check: lossy_id_cast::check,
        help: "`as` narrowing can silently alias the u32::MAX merge sentinel: use \
               RecordId::try_from_index / u32::try_from, or add `// sablock-lint: allow(lossy-id-cast): \
               <why the value provably fits>`",
    },
    Rule {
        name: "thread-confinement",
        applies: everywhere,
        check: thread_confinement::check,
        help: "all parallelism goes through core::parallel (deterministic chunk-and-stitch); call \
               parallel_map/parallel_map_mut, join_all, or worker_pool/JobQueue instead of spawning \
               threads or holding JoinHandles directly",
    },
    Rule {
        name: "raw-sentinel",
        applies: lib_example_bench,
        check: raw_sentinel::check,
        help: "record-id code must name the sentinel: use MAX_RECORD_ID (== u32::MAX - 1) so the \
               reserved-id invariant is greppable, or add `// sablock-lint: allow(raw-sentinel): <reason>`",
    },
    Rule {
        name: "unwrap-in-lib",
        applies: lib_only,
        check: unwrap_in_lib::check,
        help: "I/O and parsing fail in production: propagate a typed error (CoreError/DatasetError) \
               instead of panicking, or add `// sablock-lint: allow(unwrap-in-lib): <why it cannot fail>`",
    },
];

/// The help text for a rule name — token rules here, semantic rules from
/// [`crate::semantic`] — if registered (engine pseudo-rules like
/// `unused-allow` have none).
pub fn help_for(name: &str) -> Option<&'static str> {
    RULES
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.help)
        .or_else(|| crate::semantic::help_for(name))
}

/// Whether an identifier is record-id-flavoured: one of the id newtypes, or
/// any snake/camel identifier with an `id`/`ids`/`record`/`records` word
/// segment (`next_id`, `RecordIdOverflow` — but not `valid` or `idx`).
pub(crate) fn is_id_flavoured(ident: &str) -> bool {
    matches!(ident, "RecordId" | "EntityId" | "ConceptId" | "MAX_RECORD_ID")
        || crate::engine::ident_segments(ident)
            .iter()
            .any(|s| matches!(s.as_str(), "id" | "ids" | "record" | "records"))
}
