//! `raw-sentinel`: raw `u32::MAX` / `0xFFFF_FFFF` literals in record-id or
//! packing contexts.
//!
//! `u32::MAX` is load-bearing: it is the reserved record id whose packed
//! form collides with the `u64::MAX` exhausted-run sentinel of the
//! loser-tree merge, which is why `MAX_RECORD_ID == u32::MAX - 1` exists.
//! Code that spells the boundary as a raw literal instead of the named
//! constant silently decouples from that invariant — if the sentinel ever
//! moved, grep would not find the stragglers. The rule fires on `u32::MAX`
//! (the token path) and on any integer literal equal to `0xFFFF_FFFF` when
//! the enclosing statement is record-id- or packing-flavoured.

use crate::engine::{FileTokens, Finding};
use crate::lexer::{int_value, TokenKind};
use crate::rules::is_id_flavoured;

/// Beyond id flavour, these identifiers mark a packing context where the
/// sentinel invariant is live.
fn is_pack_flavoured(ident: &str) -> bool {
    is_id_flavoured(ident)
        || crate::engine::ident_segments(ident)
            .iter()
            .any(|s| matches!(s.as_str(), "pack" | "packed" | "sentinel" | "tombstone"))
}

pub(super) fn check(file: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let is_u32_max = token.is_ident("u32") && file.matches_seq(i, &["u32", ":", ":", "MAX"]);
        let is_literal = token.kind == TokenKind::Int && int_value(&token.text) == Some(0xFFFF_FFFF);
        if !(is_u32_max || is_literal) {
            continue;
        }
        let range = file.statement_range(i);
        if !file.range_has_ident(range, is_pack_flavoured) {
            continue;
        }
        findings.push(Finding {
            rule: "raw-sentinel",
            message: format!(
                "raw `{}` in a record-id/packing context — name the boundary via MAX_RECORD_ID so the \
                 reserved-sentinel invariant stays greppable",
                if is_u32_max { "u32::MAX" } else { token.text.as_str() }
            ),
            line: token.line,
            col: token.col,
        });
    }
}
