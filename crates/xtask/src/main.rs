//! Command-line entry point: `cargo xtask lint [files…]`.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → two levels up, independent of the invoking cwd.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [files…]\n\n\
         Runs the workspace determinism linter over every in-scope .rs file\n\
         (or only the given workspace-relative files). Rules and the allow\n\
         marker syntax are catalogued in docs/LINTS.md."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        _ => return usage(),
    }
    let root = workspace_root();

    let diagnostics = if args.len() > 1 {
        let mut all = Vec::new();
        for rel in &args[1..] {
            let path = root.join(rel);
            let source = match std::fs::read_to_string(&path) {
                Ok(source) => source,
                Err(err) => {
                    eprintln!("error: cannot read {rel}: {err}");
                    return ExitCode::from(2);
                }
            };
            all.extend(xtask::analyze_path_source(rel, &source));
        }
        all
    } else {
        match xtask::lint_workspace(&root) {
            Ok(diagnostics) => diagnostics,
            Err(err) => {
                eprintln!("error: workspace walk failed: {err}");
                return ExitCode::from(2);
            }
        }
    };

    for diagnostic in &diagnostics {
        eprintln!("{diagnostic}");
    }
    if diagnostics.is_empty() {
        eprintln!("xtask lint: clean ({} rules, zero findings, zero unused allows)", xtask::rules::RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}
