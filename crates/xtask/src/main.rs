//! Command-line entry point: `cargo xtask lint [--json] [files…]` and
//! `cargo xtask analyze [--json] [--graph-dot <file>] [--root <dir>]`.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → two levels up, independent of the invoking cwd.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--json] [files…]\n\
         \u{20}      cargo xtask analyze [--json] [--graph-dot <file>] [--root <dir>]\n\n\
         `lint` runs the token rules and the call-graph semantic rules over\n\
         every in-scope .rs file (or the token rules only, over the given\n\
         workspace-relative files). `analyze` is the same full pass with the\n\
         call-graph artifacts exposed: --graph-dot writes the resolved call\n\
         graph as Graphviz DOT, --root analyzes a different workspace (used\n\
         by the broken-fixture CI regression). --json writes the complete\n\
         machine-readable finding set (suppressions included) to stdout.\n\
         Rules and the allow-marker syntax are catalogued in docs/LINTS.md."
    );
    ExitCode::from(2)
}

struct Options {
    json: bool,
    graph_dot: Option<PathBuf>,
    root: PathBuf,
    files: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        json: false,
        graph_dot: None,
        root: workspace_root(),
        files: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--graph-dot" => {
                let value = iter.next().ok_or("--graph-dot needs a file path")?;
                options.graph_dot = Some(PathBuf::from(value));
            }
            "--root" => {
                let value = iter.next().ok_or("--root needs a directory")?;
                options.root = PathBuf::from(value);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => options.files.push(other.to_string()),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match args.first().map(String::as_str) {
        Some(command @ ("lint" | "analyze")) => command,
        _ => return usage(),
    };
    let options = match parse_options(&args[1..]) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return usage();
        }
    };

    // Explicit-file mode (lint only): token rules on just those files.
    // Semantic rules need the whole workspace, so they are skipped here —
    // the workspace run in CI still judges every semantic allow.
    if command == "lint" && !options.files.is_empty() {
        let mut diagnostics = Vec::new();
        for rel in &options.files {
            let path = options.root.join(rel);
            let source = match std::fs::read_to_string(&path) {
                Ok(source) => source,
                Err(err) => {
                    eprintln!("error: cannot read {rel}: {err}");
                    return ExitCode::from(2);
                }
            };
            diagnostics.extend(xtask::analyze_path_source(rel, &source));
        }
        return finish(command, &diagnostics, options.json, |d| {
            xtask::render_json(d)
        });
    }

    let analysis = match xtask::lint_workspace_all(&options.root) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("error: workspace walk failed: {err}");
            return ExitCode::from(2);
        }
    };
    if let Some(dot_path) = &options.graph_dot {
        let dot = xtask::graph::to_dot(&analysis.model, &analysis.graph);
        if let Err(err) = std::fs::write(dot_path, dot) {
            eprintln!("error: cannot write {}: {err}", dot_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xtask {command}: wrote call graph ({} functions) to {}",
            analysis.graph.nodes.len(),
            dot_path.display()
        );
    }
    let active: Vec<xtask::Diagnostic> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.allowed.is_none())
        .cloned()
        .collect();
    finish(command, &active, options.json, |_| xtask::render_json(&analysis.diagnostics))
}

/// Prints diagnostics (and the JSON document when asked) and converts the
/// active finding count into the exit code.
fn finish(
    command: &str,
    active: &[xtask::Diagnostic],
    json: bool,
    render: impl Fn(&[xtask::Diagnostic]) -> String,
) -> ExitCode {
    for diagnostic in active {
        eprintln!("{diagnostic}");
    }
    if json {
        print!("{}", render(active));
    }
    if active.is_empty() {
        eprintln!(
            "xtask {command}: clean ({} token rules, {} semantic rules, zero findings, zero unused allows)",
            xtask::rules::RULES.len(),
            xtask::semantic::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {command}: {} finding(s)", active.len());
        ExitCode::FAILURE
    }
}
