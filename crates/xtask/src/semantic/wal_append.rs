//! `wal-append-before-apply`: inside `CandidateService` write paths, every
//! mutation of the COW head index (`head.insert_batch(…)`, `head.remove(…)`)
//! must be dominated by a `wal.append(…)` call.
//!
//! Domination is checked the way the tentpole specifies: *ordering* on the
//! token stream within one function body (the append textually precedes the
//! mutation), *reachability* on the call graph. A function that mutates the
//! head without a local preceding append is fine exactly when every one of
//! its in-workspace callers guards the call site — i.e. appends before the
//! call in its own body, or is itself only entered through guarded call
//! sites (recursive). An unguarded direct call is reported at that call
//! site, which is where the reasoned allow belongs when the path is
//! legitimately append-free (WAL replay during recovery: the ops being
//! applied are already durable in the log).

use std::collections::BTreeMap;

use crate::graph::{CallGraph, Model};

use super::{seq_at, FileFinding};
use crate::engine::Finding;

const MUTATIONS: &[&[&str]] = &[
    &["head", ".", "insert_batch", "("],
    &["head", ".", "remove", "("],
];
const APPEND: &[&str] = &["wal", ".", "append", "("];

/// Token index + position + rendering of the first head mutation in a
/// node's body, if any.
fn first_mutation(model: &Model, graph: &CallGraph, node: usize) -> Option<(usize, u32, u32, String)> {
    let key = graph.nodes[node];
    let file = &model.files[key.file];
    let item = &file.parsed.fns[key.item];
    let (start, end) = item.body;
    (start..end).find_map(|i| {
        MUTATIONS.iter().find(|m| seq_at(&file.tokens, i, m)).map(|m| {
            let t = &file.tokens[i];
            (i, t.line, t.col, format!("{}.{}(…)", m[0], m[2]))
        })
    })
}

/// Token index of the first `wal.append(` in a node's body, if any.
fn first_append(model: &Model, graph: &CallGraph, node: usize) -> Option<usize> {
    let key = graph.nodes[node];
    let file = &model.files[key.file];
    let item = &file.parsed.fns[key.item];
    let (start, end) = item.body;
    (start..end).find(|&i| seq_at(&file.tokens, i, APPEND))
}

/// The token index of the call site at (`line`, `col`) inside a caller's
/// body, if the position resolves.
fn site_index(model: &Model, graph: &CallGraph, caller: usize, line: u32, col: u32) -> Option<usize> {
    let key = graph.nodes[caller];
    let file = &model.files[key.file];
    let item = &file.parsed.fns[key.item];
    (item.body.0..item.body.1).find(|&i| {
        let t = &file.tokens[i];
        t.line == line && t.col == col
    })
}

/// Whether one call site into `node` is guarded: the caller appends before
/// the site in its own body, or the caller itself is only entered through
/// guarded sites (memoized per caller; cycles resolve to unguarded).
fn site_guarded(
    model: &Model,
    graph: &CallGraph,
    caller: usize,
    site: Option<usize>,
    memo: &mut BTreeMap<usize, bool>,
    visiting: &mut Vec<usize>,
) -> bool {
    if let (Some(append_idx), Some(site_idx)) = (first_append(model, graph, caller), site) {
        if append_idx < site_idx {
            return true;
        }
    }
    callers_guard(model, graph, caller, memo, visiting)
}

/// Whether every call path into `node` is guarded. A function nobody calls
/// is unguarded (nothing proves an append happened first).
fn callers_guard(
    model: &Model,
    graph: &CallGraph,
    node: usize,
    memo: &mut BTreeMap<usize, bool>,
    visiting: &mut Vec<usize>,
) -> bool {
    if let Some(&known) = memo.get(&node) {
        return known;
    }
    if visiting.contains(&node) {
        return false;
    }
    visiting.push(node);
    let mut any_caller = false;
    let mut guarded = true;
    for caller in 0..graph.nodes.len() {
        for edge in graph.edges[caller].iter().filter(|e| e.callee == node) {
            any_caller = true;
            let site = site_index(model, graph, caller, edge.line, edge.col);
            if !site_guarded(model, graph, caller, site, memo, visiting) {
                guarded = false;
            }
        }
    }
    visiting.pop();
    let result = any_caller && guarded;
    memo.insert(node, result);
    result
}

/// Runs the rule; see the module docs.
pub fn check(model: &Model, graph: &CallGraph) -> Vec<FileFinding> {
    let mut findings = Vec::new();
    let mut memo: BTreeMap<usize, bool> = BTreeMap::new();
    for node in 0..graph.nodes.len() {
        let key = graph.nodes[node];
        if !model.files[key.file].path.contains("crates/serve/src/") {
            continue;
        }
        let Some((mutation_idx, line, col, what)) = first_mutation(model, graph, node) else {
            continue;
        };
        if let Some(append_idx) = first_append(model, graph, node) {
            if append_idx < mutation_idx {
                continue; // locally dominated: append precedes the mutation
            }
        }
        // Judge each direct caller's call site; report the unguarded ones
        // there (that's where a replay-style allow belongs).
        let mut any_caller = false;
        for caller in 0..graph.nodes.len() {
            for edge in graph.edges[caller].iter().filter(|e| e.callee == node) {
                any_caller = true;
                let site = site_index(model, graph, caller, edge.line, edge.col);
                let mut visiting = vec![node];
                if site_guarded(model, graph, caller, site, &mut memo, &mut visiting) {
                    continue;
                }
                findings.push((
                    graph.nodes[caller].file,
                    Finding {
                        rule: "wal-append-before-apply",
                        message: format!(
                            "call into `{}`, which mutates the COW head (`{what}`), is not \
                             preceded by `wal.append` on this path",
                            graph.display_name(model, node)
                        ),
                        line: edge.line,
                        col: edge.col,
                    },
                ));
            }
        }
        if !any_caller {
            findings.push((
                key.file,
                Finding {
                    rule: "wal-append-before-apply",
                    message: format!(
                        "`{}` mutates the COW head (`{what}`) with no preceding `wal.append` \
                         in its body and no guarded caller",
                        graph.display_name(model, node)
                    ),
                    line,
                    col,
                },
            ));
        }
    }
    findings
}
