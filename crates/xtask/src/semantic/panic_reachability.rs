//! `panic-reachability`: no panic construct transitively reachable from a
//! `sablock_serve` request entry point.
//!
//! Entry points are the service's request surfaces: `handle_line` /
//! `handle_line_with` (protocol dispatch), the reader `query*` methods, and
//! the front-end connection loop (`serve_tcp`, `serve_connection`, `shed`).
//! From those, the rule walks the resolved call graph and reports every
//! panic site — `panic!`-family macros, `.unwrap()` / `.expect(…)`, and (in
//! `crates/serve` only) `x[i]` indexing — together with one shortest call
//! path demonstrating reachability.
//!
//! Indexing outside `crates/serve` is deliberately not a panic site: core's
//! index arithmetic is pervasive, perf-critical, and already covered by the
//! `check-invariants` runtime sanitizer; the serve crate is where a fresh
//! out-of-bounds panic would take a request (or the whole writer) down.

use crate::graph::{path_to, reachable_from, CallGraph, Model};
use crate::parser::PanicKind;

use super::FileFinding;
use crate::engine::Finding;

/// Entry-point names (exact) within `crates/serve/src/`.
const ENTRY_NAMES: &[&str] = &["handle_line", "handle_line_with", "serve_tcp", "serve_connection", "shed"];

/// Whether a node is a request entry point.
fn is_entry(model: &Model, graph: &CallGraph, node: usize) -> bool {
    let key = graph.nodes[node];
    let file = &model.files[key.file];
    if !file.path.contains("crates/serve/src/") {
        return false;
    }
    let item = &file.parsed.fns[key.item];
    ENTRY_NAMES.contains(&item.name.as_str()) || item.name.starts_with("query")
}

/// Runs the rule; see the module docs.
pub fn check(model: &Model, graph: &CallGraph) -> Vec<FileFinding> {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| is_entry(model, graph, n))
        .collect();
    let parents = reachable_from(graph, &entries);
    let mut findings = Vec::new();
    for node in 0..graph.nodes.len() {
        if parents[node].is_none() {
            continue;
        }
        let key = graph.nodes[node];
        let file = &model.files[key.file];
        let in_serve = file.path.contains("crates/serve/");
        let item = &file.parsed.fns[key.item];
        let path = path_to(graph, model, &parents, node).join(" → ");
        for panic in &item.panics {
            if panic.kind == PanicKind::Index && !in_serve {
                continue;
            }
            findings.push((
                key.file,
                Finding {
                    rule: "panic-reachability",
                    message: format!(
                        "`{}` can panic and is reachable from a request entry point via {path}",
                        panic.what
                    ),
                    line: panic.line,
                    col: panic.col,
                },
            ));
        }
    }
    findings
}
