//! `lock-order`: the writer mutex and the published-epoch `RwLock` nest in
//! one global order — **mutex first** — everywhere in the graph.
//!
//! The service's deadlock-freedom argument is exactly this total order: the
//! writer takes `writer.lock()` and publishes through a transient
//! `published.write()` while holding it; readers take transient
//! `published.read()` guards and never touch the mutex. A function that
//! *holds* a `published` guard (a `let`-bound acquisition, alive past its
//! statement) and then acquires the mutex — directly or through anything it
//! transitively calls — inverts that order and is reported. Transient
//! acquisitions (`*published.write()… = …`, `Arc::clone(&published.read()…)`)
//! release their guard at the end of the statement and cannot participate in
//! an inversion.
//!
//! Acquisition sites are recognised by token shape (`writer.lock(`,
//! `published.read(` / `published.write(`), so the rule keys on the
//! service's field names; fixtures mirror them.

use std::collections::BTreeMap;

use crate::graph::{CallGraph, Model};

use super::{seq_at, statement_is_let, FileFinding};
use crate::engine::Finding;

/// One lock-acquisition site inside a function body.
#[derive(Debug, Clone, Copy)]
struct Acquire {
    /// Token index of the acquisition.
    idx: usize,
    /// Whether this acquires the writer mutex (else the epoch RwLock).
    mutex: bool,
    /// Whether the guard is `let`-bound (held past its statement).
    held: bool,
    line: u32,
    col: u32,
}

/// Scans a node's body for mutex / RwLock acquisition sites.
fn acquires(model: &Model, graph: &CallGraph, node: usize) -> Vec<Acquire> {
    let key = graph.nodes[node];
    let file = &model.files[key.file];
    let item = &file.parsed.fns[key.item];
    let (start, end) = item.body;
    let mut out = Vec::new();
    for i in start..end {
        let mutex = seq_at(&file.tokens, i, &["writer", ".", "lock", "("]);
        let rwlock = seq_at(&file.tokens, i, &["published", ".", "read", "("])
            || seq_at(&file.tokens, i, &["published", ".", "write", "("]);
        if mutex || rwlock {
            out.push(Acquire {
                idx: i,
                mutex,
                held: statement_is_let(&file.tokens, i),
                line: file.tokens[i].line,
                col: file.tokens[i].col,
            });
        }
    }
    out
}

/// Whether `node` acquires the writer mutex, directly or transitively
/// (memoized; cycles resolve to `false`, which is sound here because a
/// cycle member that *does* acquire gets `true` from its own direct scan).
fn takes_mutex(
    model: &Model,
    graph: &CallGraph,
    node: usize,
    memo: &mut BTreeMap<usize, bool>,
    visiting: &mut Vec<usize>,
) -> bool {
    if let Some(&known) = memo.get(&node) {
        return known;
    }
    if visiting.contains(&node) {
        return false;
    }
    if acquires(model, graph, node).iter().any(|a| a.mutex) {
        memo.insert(node, true);
        return true;
    }
    visiting.push(node);
    let result = graph.edges[node]
        .iter()
        .any(|e| takes_mutex(model, graph, e.callee, memo, visiting));
    visiting.pop();
    memo.insert(node, result);
    result
}

/// Runs the rule; see the module docs.
pub fn check(model: &Model, graph: &CallGraph) -> Vec<FileFinding> {
    let mut findings = Vec::new();
    let mut memo: BTreeMap<usize, bool> = BTreeMap::new();
    for node in 0..graph.nodes.len() {
        let key = graph.nodes[node];
        let file = &model.files[key.file];
        if !file.path.contains("crates/serve/src/") {
            continue;
        }
        let item = &file.parsed.fns[key.item];
        let sites = acquires(model, graph, node);
        let Some(first_held_rw) = sites.iter().find(|a| !a.mutex && a.held) else {
            continue;
        };
        // Direct inversion: the mutex acquired later in the same body.
        for later in sites.iter().filter(|a| a.mutex && a.idx > first_held_rw.idx) {
            findings.push((
                key.file,
                Finding {
                    rule: "lock-order",
                    message: format!(
                        "`{}` acquires the writer mutex while holding the published-epoch \
                         RwLock (held since line {}); the global order is mutex before RwLock",
                        item.name, first_held_rw.line
                    ),
                    line: later.line,
                    col: later.col,
                },
            ));
        }
        // Interprocedural inversion: a call made while the guard is held,
        // into something that transitively acquires the mutex.
        for edge in &graph.edges[node] {
            // The call site must come after the held acquisition.
            let call_after = (first_held_rw.idx..item.body.1).any(|i| {
                let t = &file.tokens[i];
                t.line == edge.line && t.col == edge.col
            });
            if !call_after {
                continue;
            }
            let mut visiting = Vec::new();
            if takes_mutex(model, graph, edge.callee, &mut memo, &mut visiting) {
                findings.push((
                    key.file,
                    Finding {
                        rule: "lock-order",
                        message: format!(
                            "`{}` calls `{}` while holding the published-epoch RwLock \
                             (held since line {}), and that call transitively acquires \
                             the writer mutex; the global order is mutex before RwLock",
                            item.name,
                            graph.display_name(model, edge.callee),
                            first_held_rw.line
                        ),
                        line: edge.line,
                        col: edge.col,
                    },
                ));
            }
        }
    }
    findings
}
