//! The workspace semantic-analysis pass (`cargo xtask analyze`, also folded
//! into `cargo xtask lint`): four interprocedural rules riding the
//! [`crate::graph`] call graph, enforcing the service layer's concurrency
//! and durability protocols that token-local rules structurally cannot see.
//!
//! * [`panic_reachability`] — no panic construct transitively reachable
//!   from a `sablock_serve` request entry point;
//! * [`lock_order`] — the writer mutex and the epoch `RwLock` nest in one
//!   global order (mutex first), checked across function boundaries;
//! * [`wal_append`] — COW head mutations in `CandidateService` write paths
//!   are dominated by `wal.append` (append-before-apply);
//! * [`durable_rename`] — durable files under `persist.rs`/`wal.rs` follow
//!   the temp-file → fsync → rename sequence.
//!
//! Findings use the same diagnostics, allow markers and staleness rules as
//! the token engine; the only difference is that suppression is judged here,
//! against the whole-workspace finding set.

pub mod durable_rename;
pub mod lock_order;
pub mod panic_reachability;
pub mod wal_append;

use crate::engine::{Diagnostic, Finding, SemanticAllow};
use crate::graph::{CallGraph, Model};
use crate::lexer::{Token, TokenKind};

/// One semantic rule's registry entry (the checks themselves run over the
/// whole model, so there is no per-file `check` hook here).
pub struct SemanticRule {
    /// The rule's name, as used in diagnostics and allow markers.
    pub name: &'static str,
    /// One-line remediation guidance appended to diagnostics.
    pub help: &'static str,
}

/// All semantic rules, in diagnostic-name order.
pub const RULES: &[SemanticRule] = &[
    SemanticRule {
        name: "durable-rename",
        help: "create durable files as a temp file, fsync, then rename into place \
               (see persist::write_atomically); a bare File::create of the final \
               path can be seen half-written after a crash",
    },
    SemanticRule {
        name: "lock-order",
        help: "acquire the writer mutex before the published-epoch RwLock, \
               everywhere; holding the RwLock while taking the mutex can deadlock \
               against the writer's publish step",
    },
    SemanticRule {
        name: "panic-reachability",
        help: "request paths must degrade, not panic: return a protocol error \
               instead, or prove the construct unreachable and carry a reasoned \
               allow",
    },
    SemanticRule {
        name: "wal-append-before-apply",
        help: "append the op to the WAL before mutating the COW head index, so a \
               crash never leaves applied-but-unlogged state (append-before-apply)",
    },
];

/// The help text for a semantic rule, if `name` names one.
pub fn help_for(name: &str) -> Option<&'static str> {
    RULES.iter().find(|r| r.name == name).map(|r| r.help)
}

/// Whether `tokens[idx..]` starts with the given ident/punct pattern (same
/// matching convention as `FileTokens::matches_seq`, but over a plain slice
/// so the semantic rules can scan function bodies).
pub fn seq_at(tokens: &[Token], idx: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        tokens.get(idx + k).is_some_and(|t| {
            if want.chars().all(|c| c.is_alphanumeric() || c == '_') {
                t.is_ident(want)
            } else {
                t.kind == TokenKind::Punct && t.text == *want
            }
        })
    })
}

/// Whether a statement beginning is a `let` binding: walks left from `idx`
/// to the nearest statement boundary and checks the first token after it.
/// Used to tell a *held* guard (`let guard = x.lock()…`) from a transient
/// one dropped at the end of its statement.
pub fn statement_is_let(tokens: &[Token], idx: usize) -> bool {
    let mut start = idx;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    tokens.get(start).is_some_and(|t| t.is_ident("let"))
}

/// A finding bound to the model file it fires in.
pub type FileFinding = (usize, Finding);

/// Runs every semantic rule over the model and judges the files'
/// semantic-rule allow markers: suppressed findings keep the marker's
/// reason, and a marker that suppresses nothing becomes an `unused-allow`
/// error. `allows` is indexed like `model.files`.
pub fn run(model: &Model, graph: &CallGraph, allows: &mut [Vec<SemanticAllow>]) -> Vec<Diagnostic> {
    let mut findings: Vec<FileFinding> = Vec::new();
    findings.extend(panic_reachability::check(model, graph));
    findings.extend(lock_order::check(model, graph));
    findings.extend(wal_append::check(model, graph));
    findings.extend(durable_rename::check(model));

    let mut out: Vec<Diagnostic> = Vec::new();
    for (file_idx, finding) in findings {
        let mut reason = None;
        if let Some(file_allows) = allows.get_mut(file_idx) {
            for allow in file_allows.iter_mut() {
                if allow.rule == finding.rule && allow.target_line == Some(finding.line) {
                    allow.used = true;
                    reason = Some(allow.reason.clone());
                }
            }
        }
        out.push(Diagnostic {
            file: model.files[file_idx].path.clone(),
            finding,
            allowed: reason,
        });
    }
    for (file_idx, file_allows) in allows.iter().enumerate() {
        for allow in file_allows {
            if !allow.used {
                out.push(Diagnostic {
                    file: model.files[file_idx].path.clone(),
                    finding: Finding {
                        rule: "unused-allow",
                        message: format!(
                            "allow({}) suppresses nothing — the violation it covered is gone; remove the marker",
                            allow.rule
                        ),
                        line: allow.line,
                        col: allow.col,
                    },
                    allowed: None,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.finding.line, a.finding.col, a.finding.rule).cmp(&(
            b.file.as_str(),
            b.finding.line,
            b.finding.col,
            b.finding.rule,
        ))
    });
    out.dedup_by(|a, b| {
        a.file == b.file && a.finding.line == b.finding.line && a.finding.rule == b.finding.rule
    });
    out
}
