//! `durable-rename`: file creation on the durable-state paths
//! (`crates/serve/src/persist.rs`, `crates/serve/src/wal.rs`) must follow
//! the temp-file → fsync → rename sequence.
//!
//! A bare `File::create` of the final path, written in place, can be seen
//! half-written by recovery after a crash; the checkpoint discipline is to
//! create a temp file, `sync_all` it, rename it over the final name, and
//! fsync the parent directory (see `persist::write_atomically`). The rule
//! flags every `File::create(…)` in those files whose enclosing function
//! does not also mention `sync_all` *and* `rename` later in its body.
//! Deliberate exceptions — the WAL's append-only active segment, whose torn
//! tail is discarded by recovery — carry reasoned allows.

use crate::graph::Model;
use crate::lexer::TokenKind;

use super::{seq_at, FileFinding};
use crate::engine::Finding;

const CREATE: &[&str] = &["File", ":", ":", "create", "("];

/// The files this rule audits.
fn in_scope(path: &str) -> bool {
    path.ends_with("crates/serve/src/persist.rs") || path.ends_with("crates/serve/src/wal.rs")
}

/// Runs the rule; see the module docs.
pub fn check(model: &Model) -> Vec<FileFinding> {
    let mut findings = Vec::new();
    for (file_idx, file) in model.files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        for item in &file.parsed.fns {
            if item.in_test || !item.has_body {
                continue;
            }
            let (start, end) = item.body;
            for i in start..end {
                if !seq_at(&file.tokens, i, CREATE) {
                    continue;
                }
                let rest = &file.tokens[i..end];
                let mentions = |name: &str| {
                    rest.iter().any(|t| t.kind == TokenKind::Ident && t.text == name)
                };
                if mentions("sync_all") && mentions("rename") {
                    continue;
                }
                let t = &file.tokens[i];
                findings.push((
                    file_idx,
                    Finding {
                        rule: "durable-rename",
                        message: format!(
                            "`File::create` in `{}` is not followed by the temp-file → \
                             fsync (`sync_all`) → `rename` sequence in this function",
                            item.name
                        ),
                        line: t.line,
                        col: t.col,
                    },
                ));
            }
        }
    }
    findings
}
