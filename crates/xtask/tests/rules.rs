//! Fixture-based positive/negative tests for every lint rule: each rule
//! must fire on the violating fixture, stay silent on the idiomatic
//! fixture, be silenced by a reasoned allow marker, and report an allow
//! marker that silences nothing as `unused-allow`.

use xtask::analyze_path_source;

/// Path that classifies as library scope (all rules apply).
const LIB: &str = "crates/core/src/fixture.rs";

fn rules_at(path: &str, source: &str) -> Vec<&'static str> {
    analyze_path_source(path, source).into_iter().map(|d| d.finding.rule).collect()
}

// --- hash-iter-order ------------------------------------------------------

#[test]
fn hash_iter_order_fires_on_unsorted_iteration() {
    let source = r#"
use std::collections::HashMap;
fn leak(map: HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, _) in map.iter() {
        out.push(*k);
    }
    out
}
"#;
    assert_eq!(rules_at(LIB, source), ["hash-iter-order"]);
}

#[test]
fn hash_iter_order_stays_silent_with_adjacent_sort() {
    let source = r#"
use std::collections::HashMap;
fn ordered(map: HashMap<u64, u64>) -> Vec<u64> {
    let mut out: Vec<u64> = map.keys().copied().collect();
    out.sort_unstable();
    out
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn hash_iter_order_stays_silent_on_stable_hash_aliases() {
    // StableHashMap (seeded FxHash) is deterministic and exempt — only the
    // std HashMap/HashSet type names are tracked.
    let source = r#"
fn stable(map: StableHashMap<u64, u64>) -> Vec<u64> {
    map.keys().copied().collect()
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn hash_iter_order_ignores_test_code() {
    let source = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    #[test]
    fn order_does_not_matter_here() {
        let map: HashMap<u64, u64> = HashMap::new();
        for _ in map.iter() {}
    }
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

// --- lossy-id-cast --------------------------------------------------------

#[test]
fn lossy_id_cast_fires_on_record_id_narrowing() {
    let source = r#"
fn truncate(index: usize) -> RecordId {
    RecordId(index as u32)
}
"#;
    assert_eq!(rules_at(LIB, source), ["lossy-id-cast"]);
}

#[test]
fn lossy_id_cast_stays_silent_on_checked_conversion() {
    let source = r#"
fn checked(index: usize) -> Option<RecordId> {
    u32::try_from(index).ok().map(RecordId)
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn lossy_id_cast_stays_silent_on_unflavoured_counts() {
    // A cast in a statement with no id-flavoured identifier is fine — the
    // rule targets record/entity/concept id paths, not arbitrary numerics.
    let source = r#"
fn widen(count: usize) -> u64 {
    count as u64
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

// --- thread-confinement ---------------------------------------------------

#[test]
fn thread_confinement_fires_outside_core_parallel() {
    let source = r#"
fn race() {
    std::thread::spawn(|| {});
}
"#;
    assert_eq!(rules_at(LIB, source), ["thread-confinement"]);
}

#[test]
fn thread_confinement_fires_on_use_plus_path_head() {
    let source = r#"
use std::thread;
fn race() {
    thread::spawn(|| {});
}
"#;
    let rules = rules_at(LIB, source);
    assert!(!rules.is_empty() && rules.iter().all(|r| *r == "thread-confinement"), "got {rules:?}");
}

#[test]
fn thread_confinement_exempts_core_parallel_itself() {
    let source = r#"
fn confined() {
    std::thread::spawn(|| {});
}
"#;
    assert_eq!(rules_at("crates/core/src/parallel.rs", source), Vec::<&str>::new());
}

#[test]
fn thread_confinement_fires_even_in_tests() {
    // A racy test is a flaky test: unlike the other rules, this one does
    // not get a #[cfg(test)] exemption.
    let source = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn racy() {
        std::thread::spawn(|| {});
    }
}
"#;
    assert_eq!(rules_at(LIB, source), ["thread-confinement"]);
}

// --- raw-sentinel ---------------------------------------------------------

#[test]
fn raw_sentinel_fires_on_u32_max_in_packing_context() {
    let source = r#"
fn pack(id: u32) -> u64 {
    if id == u32::MAX { panic!() } else { 0 }
}
"#;
    assert_eq!(rules_at(LIB, source), ["raw-sentinel"]);
}

#[test]
fn raw_sentinel_fires_on_hex_literal_in_packing_context() {
    let source = r#"
fn tombstone_key(packed: u64) -> bool {
    packed == 0xFFFF_FFFF
}
"#;
    assert_eq!(rules_at(LIB, source), ["raw-sentinel"]);
}

#[test]
fn raw_sentinel_stays_silent_outside_packing_contexts() {
    let source = r#"
fn saturate(x: u32) -> u32 {
    if x == u32::MAX { x } else { x + 1 }
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn raw_sentinel_stays_silent_on_named_constant() {
    let source = r#"
fn bounded(id: u32) -> bool {
    id <= MAX_RECORD_ID
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

// --- unwrap-in-lib --------------------------------------------------------

#[test]
fn unwrap_in_lib_fires_on_io_paths() {
    let source = r#"
fn slurp(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
"#;
    assert_eq!(rules_at(LIB, source), ["unwrap-in-lib"]);
}

#[test]
fn unwrap_in_lib_fires_on_expect_on_parse_paths() {
    let source = r#"
fn number(text: &str) -> u64 {
    text.parse().expect("numeric")
}
"#;
    assert_eq!(rules_at(LIB, source), ["unwrap-in-lib"]);
}

#[test]
fn unwrap_in_lib_stays_silent_without_fallible_flavour() {
    // Infallible unwraps (freshly checked options, lock poisoning) are not
    // what the rule is for.
    let source = r#"
fn head(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn unwrap_in_lib_ignores_tests_and_examples() {
    let source = r#"
fn slurp(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
"#;
    assert_eq!(rules_at("tests/fixture.rs", source), Vec::<&str>::new());
    assert_eq!(rules_at("examples/fixture.rs", source), Vec::<&str>::new());
}

// --- allow markers --------------------------------------------------------

#[test]
fn allow_marker_silences_the_named_rule() {
    let source = r#"
fn truncate(index: usize) -> RecordId {
    RecordId(index as u32) // sablock-lint: allow(lossy-id-cast): fixture proves marker works
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn own_line_allow_marker_covers_the_next_code_line() {
    let source = r#"
fn truncate(index: usize) -> RecordId {
    // sablock-lint: allow(lossy-id-cast): fixture proves own-line markers work
    RecordId(index as u32)
}
"#;
    assert_eq!(rules_at(LIB, source), Vec::<&str>::new());
}

#[test]
fn allow_marker_does_not_silence_other_rules() {
    let source = r#"
fn truncate(index: usize) -> RecordId {
    RecordId(index as u32) // sablock-lint: allow(hash-iter-order): wrong rule named
}
"#;
    let rules = rules_at(LIB, source);
    // The cast still fires, and the marker for the wrong rule is unused.
    assert!(rules.contains(&"lossy-id-cast"), "got {rules:?}");
    assert!(rules.contains(&"unused-allow"), "got {rules:?}");
}

#[test]
fn unused_allow_is_an_error() {
    let source = r#"
fn fine() -> u64 {
    0 // sablock-lint: allow(lossy-id-cast): nothing here needs this
}
"#;
    assert_eq!(rules_at(LIB, source), ["unused-allow"]);
}

#[test]
fn unknown_rule_in_allow_marker_is_an_error() {
    let source = r#"
fn fine() -> u64 {
    0 // sablock-lint: allow(no-such-rule): typo fixture
}
"#;
    assert_eq!(rules_at(LIB, source), ["unknown-allow"]);
}

#[test]
fn allow_marker_without_reason_is_an_error() {
    let source = r#"
fn truncate(index: usize) -> RecordId {
    RecordId(index as u32) // sablock-lint: allow(lossy-id-cast)
}
"#;
    let rules = rules_at(LIB, source);
    assert!(rules.contains(&"malformed-allow"), "got {rules:?}");
}

// --- scope classification -------------------------------------------------

#[test]
fn vendor_and_target_are_out_of_scope() {
    let source = "fn bad(id: usize) -> u32 { id as u32 }";
    assert_eq!(rules_at("vendor/rand/src/lib.rs", source), Vec::<&str>::new());
    assert_eq!(rules_at("target/debug/build/fixture.rs", source), Vec::<&str>::new());
}

#[test]
fn diagnostics_carry_rustc_style_positions() {
    let source = "fn truncate(index: usize) -> RecordId {\n    RecordId(index as u32)\n}\n";
    let diagnostics = analyze_path_source(LIB, source);
    assert_eq!(diagnostics.len(), 1);
    let rendered = diagnostics[0].to_string();
    assert!(
        rendered.contains(&format!("--> {LIB}:2:")),
        "diagnostic should carry a rustc-style `--> file:line:col` arrow, got: {rendered}"
    );
    assert!(rendered.starts_with("error[lossy-id-cast]"), "got: {rendered}");
}
