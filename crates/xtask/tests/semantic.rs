//! Fixture tests for the semantic (call-graph) rules: each rule exercised
//! positive / negative / allowed / stale-allow through [`xtask::analyze_sources`],
//! the thread-confinement fixtures both ways, the `--json` golden format,
//! and the determinism contract (byte-identical, file-order independent).
//!
//! Fixture sources only need to *lex* like the service layer — they mirror
//! its field names (`writer`, `published`, `head`, `wal`) and paths
//! (`crates/serve/src/…`) because that is what the rules key on; they are
//! never compiled.

use std::collections::BTreeSet;
use std::path::Path;

use xtask::engine::Finding;
use xtask::{analyze_sources, render_json, Diagnostic, WorkspaceAnalysis};

fn sources(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect()
}

fn analyze(pairs: &[(&str, &str)]) -> WorkspaceAnalysis {
    analyze_sources(&sources(pairs))
}

/// Active findings of one rule.
fn active_of<'a>(analysis: &'a WorkspaceAnalysis, rule: &str) -> Vec<&'a Diagnostic> {
    analysis
        .active()
        .into_iter()
        .filter(|d| d.finding.rule == rule)
        .collect()
}

/// Asserts the analysis is completely clean: no active findings of any rule
/// (a stale allow would surface as `unused-allow` and fail here too).
fn assert_clean(analysis: &WorkspaceAnalysis) {
    let active = analysis.active();
    assert!(
        active.is_empty(),
        "expected a clean analysis, got:\n{}",
        active.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

// ---------------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------------

#[test]
fn panic_reachability_reports_indexing_on_a_request_path() {
    let analysis = analyze(&[(
        "crates/serve/src/protocol.rs",
        r#"
pub fn handle_line(line: &str) -> String {
    decode(line)
}

fn decode(line: &str) -> String {
    let parts: Vec<&str> = line.split('\t').collect();
    parts[0].to_string()
}
"#,
    )]);
    let findings = active_of(&analysis, "panic-reachability");
    assert_eq!(findings.len(), 1, "one indexing site on the request path");
    let message = &findings[0].finding.message;
    assert!(
        message.contains("handle_line") && message.contains("decode"),
        "the diagnostic shows the call path from the entry point: {message}"
    );
}

#[test]
fn panic_reachability_ignores_unreachable_and_panic_free_code() {
    let analysis = analyze(&[(
        "crates/serve/src/protocol.rs",
        r#"
pub fn handle_line(line: &str) -> Option<String> {
    decode(line)
}

fn decode(line: &str) -> Option<String> {
    let parts: Vec<&str> = line.split('\t').collect();
    parts.first().map(|field| field.to_string())
}

/// Panics, but nothing on a request path reaches it.
pub fn offline_report(rows: &[u64]) -> u64 {
    rows[0]
}
"#,
    )]);
    assert!(active_of(&analysis, "panic-reachability").is_empty());
}

#[test]
fn panic_reachability_honours_a_reasoned_allow() {
    let analysis = analyze(&[(
        "crates/serve/src/protocol.rs",
        r#"
pub fn handle_line(line: &str) -> String {
    decode(line)
}

fn decode(line: &str) -> String {
    let parts: Vec<&str> = line.split('\t').collect();
    // sablock-lint: allow(panic-reachability): split always yields at least one field
    parts[0].to_string()
}
"#,
    )]);
    assert_clean(&analysis);
    let suppressed: Vec<&Diagnostic> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.finding.rule == "panic-reachability" && d.allowed.is_some())
        .collect();
    assert_eq!(suppressed.len(), 1, "the finding is retained, flagged as allowed");
    assert_eq!(
        suppressed[0].allowed.as_deref(),
        Some("split always yields at least one field")
    );
}

#[test]
fn panic_reachability_stale_allow_is_an_error() {
    let analysis = analyze(&[(
        "crates/serve/src/protocol.rs",
        r#"
pub fn handle_line(line: &str) -> String {
    // sablock-lint: allow(panic-reachability): nothing here panics any more
    line.to_string()
}
"#,
    )]);
    let unused = active_of(&analysis, "unused-allow");
    assert_eq!(unused.len(), 1, "a semantic allow that suppresses nothing is an error");
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[test]
fn lock_order_reports_direct_inversion() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    pub fn bad_snapshot(&self) -> u64 {
        let guard = self.published.read();
        let writer = self.writer.lock();
        writer.epoch + guard.epoch
    }
}
"#,
    )]);
    let findings = active_of(&analysis, "lock-order");
    assert_eq!(findings.len(), 1);
    assert!(findings[0].finding.message.contains("bad_snapshot"));
}

#[test]
fn lock_order_reports_transitive_inversion() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    fn grab(&self) -> u64 {
        let writer = self.writer.lock();
        writer.epoch
    }

    pub fn bad_stats(&self) -> u64 {
        let guard = self.published.read();
        self.grab() + guard.epoch
    }
}
"#,
    )]);
    let findings = active_of(&analysis, "lock-order");
    assert_eq!(findings.len(), 1, "the inversion goes through `grab`");
    let message = &findings[0].finding.message;
    assert!(
        message.contains("grab") && message.contains("transitively"),
        "the diagnostic names the call that closes the cycle: {message}"
    );
}

#[test]
fn lock_order_accepts_the_canonical_order_and_transient_guards() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    /// Mutex first, epoch RwLock second: the canonical writer path.
    pub fn publish_epoch(&self) {
        let writer = self.writer.lock();
        *self.published.write() = writer.epoch;
    }

    /// A transient read guard (not `let`-bound) never inverts the order.
    pub fn peek(&self) -> u64 {
        clone_of(&self.published.read());
        let writer = self.writer.lock();
        writer.epoch
    }
}
"#,
    )]);
    assert!(active_of(&analysis, "lock-order").is_empty());
}

#[test]
fn lock_order_allow_and_stale_allow() {
    let allowed = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    pub fn trip_seam(&self) {
        let guard = self.published.read();
        // sablock-lint: allow(lock-order): deliberate inversion for the runtime guard test
        let writer = self.writer.lock();
        drop((guard, writer));
    }
}
"#,
    )]);
    assert_clean(&allowed);

    let stale = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    pub fn tidy(&self) -> u64 {
        // sablock-lint: allow(lock-order): no inversion here
        let writer = self.writer.lock();
        writer.epoch
    }
}
"#,
    )]);
    assert_eq!(active_of(&stale, "unused-allow").len(), 1);
}

// ---------------------------------------------------------------------------
// wal-append-before-apply
// ---------------------------------------------------------------------------

#[test]
fn wal_append_reports_unlogged_mutation_with_no_caller() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    fn apply_unlogged(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }
}
"#,
    )]);
    let findings = active_of(&analysis, "wal-append-before-apply");
    assert_eq!(findings.len(), 1);
    assert!(findings[0].finding.message.contains("no guarded caller"));
}

#[test]
fn wal_append_reports_the_unguarded_call_site() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    fn apply_unlogged(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }

    pub fn ingest(&mut self, records: &[Row]) {
        self.apply_unlogged(records);
    }
}
"#,
    )]);
    let findings = active_of(&analysis, "wal-append-before-apply");
    assert_eq!(findings.len(), 1, "reported at the caller, not inside the mutator");
    assert!(findings[0].finding.message.contains("apply_unlogged"));
}

#[test]
fn wal_append_accepts_local_and_interprocedural_domination() {
    let analysis = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    /// Locally dominated: the append textually precedes the mutation.
    fn apply_logged(&mut self, records: &[Row]) {
        self.wal.append(records);
        self.head.insert_batch(records);
    }

    /// Dominated through the caller: every call site appends first.
    fn mutate(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }

    pub fn commit(&mut self, records: &[Row]) {
        self.wal.append(records);
        self.mutate(records);
    }
}
"#,
    )]);
    assert!(active_of(&analysis, "wal-append-before-apply").is_empty());
}

#[test]
fn wal_append_allow_and_stale_allow() {
    let allowed = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    fn apply_unlogged(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }

    pub fn replay(&mut self, records: &[Row]) {
        // sablock-lint: allow(wal-append-before-apply): replayed ops are already durable in the log
        self.apply_unlogged(records);
    }
}
"#,
    )]);
    assert_clean(&allowed);

    let stale = analyze(&[(
        "crates/serve/src/service.rs",
        r#"
impl Service {
    pub fn commit(&mut self, records: &[Row]) {
        self.wal.append(records);
        // sablock-lint: allow(wal-append-before-apply): already guarded, marker is stale
        self.head.insert_batch(records);
    }
}
"#,
    )]);
    assert_eq!(active_of(&stale, "unused-allow").len(), 1);
}

// ---------------------------------------------------------------------------
// durable-rename
// ---------------------------------------------------------------------------

#[test]
fn durable_rename_reports_bare_create_on_durable_paths() {
    let analysis = analyze(&[(
        "crates/serve/src/persist.rs",
        r#"
pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)
}
"#,
    )]);
    let findings = active_of(&analysis, "durable-rename");
    assert_eq!(findings.len(), 1);
    assert!(findings[0].finding.message.contains("save"));
}

#[test]
fn durable_rename_accepts_temp_fsync_rename_and_ignores_other_files() {
    let atomic = r#"
pub fn save_atomically(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join("snapshot.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, dir.join("snapshot.bin"))
}
"#;
    let bare = r#"
pub fn scratch(path: &Path) -> io::Result<File> {
    File::create(path)
}
"#;
    let analysis = analyze(&[
        ("crates/serve/src/persist.rs", atomic),
        // The same bare create outside the durable-state files is not audited.
        ("crates/serve/src/store.rs", bare),
    ]);
    assert!(active_of(&analysis, "durable-rename").is_empty());
}

#[test]
fn durable_rename_allow_and_stale_allow() {
    let allowed = analyze(&[(
        "crates/serve/src/wal.rs",
        r#"
pub fn open_segment(dir: &Path) -> io::Result<File> {
    // sablock-lint: allow(durable-rename): append-only segment lives at its final name by design
    File::create(dir.join("segment.wal"))
}
"#,
    )]);
    assert_clean(&allowed);

    let stale = analyze(&[(
        "crates/serve/src/persist.rs",
        r#"
pub fn save_atomically(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join("snapshot.tmp");
    // sablock-lint: allow(durable-rename): already atomic, marker is stale
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, dir.join("snapshot.bin"))
}
"#,
    )]);
    assert_eq!(active_of(&stale, "unused-allow").len(), 1);
}

// ---------------------------------------------------------------------------
// thread-confinement (token rule; the PR-8/9 sanctioned primitives)
// ---------------------------------------------------------------------------

#[test]
fn thread_confinement_flags_spawns_and_join_handles_outside_core_parallel() {
    let analysis = analyze(&[(
        "crates/core/src/pipeline.rs",
        r#"
pub struct Pool {
    workers: Vec<JoinHandle<()>>,
}

pub fn fan_out(pool: &mut Pool) {
    pool.workers.push(std::thread::spawn(|| {}));
}
"#,
    )]);
    let findings = active_of(&analysis, "thread-confinement");
    assert!(
        findings.len() >= 2,
        "both the thread path and the held JoinHandle are flagged, got {}",
        findings.len()
    );
    assert!(findings.iter().any(|d| d.finding.message.contains("JoinHandle")));
}

#[test]
fn thread_confinement_accepts_sanctioned_primitives_and_the_confined_module() {
    let analysis = analyze(&[
        (
            // The sanctioned confinement points are plain calls everywhere.
            "crates/core/src/tasks.rs",
            r#"
pub fn run_parallel(items: &[u32], queue: &JobQueue) -> Vec<u32> {
    let doubled = parallel_map(items, double);
    join_all(queue.jobs());
    worker_pool(queue);
    doubled
}
"#,
        ),
        (
            // core::parallel itself is the one module allowed raw threads.
            "crates/core/src/parallel.rs",
            r#"
pub fn spawn_workers(n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..n).map(|_| std::thread::spawn(|| {})).collect()
}
"#,
        ),
    ]);
    assert!(active_of(&analysis, "thread-confinement").is_empty());
}

// ---------------------------------------------------------------------------
// --json golden format (bump `version` in render_json on any change)
// ---------------------------------------------------------------------------

#[test]
fn json_format_is_pinned() {
    let diagnostics = vec![
        Diagnostic {
            file: "crates/serve/src/service.rs".to_string(),
            finding: Finding {
                rule: "lock-order",
                message: "a \"quoted\" message with a\nnewline, a \\ backslash and a \t tab".to_string(),
                line: 42,
                col: 7,
            },
            allowed: None,
        },
        Diagnostic {
            file: "crates/serve/src/wal.rs".to_string(),
            finding: Finding {
                rule: "durable-rename",
                message: "suppressed finding".to_string(),
                line: 3,
                col: 1,
            },
            allowed: Some("append-only segment".to_string()),
        },
    ];
    let expected = concat!(
        "{\n",
        "  \"version\": 1,\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"lock-order\", \"file\": \"crates/serve/src/service.rs\", ",
        "\"line\": 42, \"col\": 7, ",
        "\"message\": \"a \\\"quoted\\\" message with a\\nnewline, a \\\\ backslash and a \\t tab\", ",
        "\"allowed\": false, \"allow_reason\": null},\n",
        "    {\"rule\": \"durable-rename\", \"file\": \"crates/serve/src/wal.rs\", ",
        "\"line\": 3, \"col\": 1, ",
        "\"message\": \"suppressed finding\", ",
        "\"allowed\": true, \"allow_reason\": \"append-only segment\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(render_json(&diagnostics), expected);
    assert_eq!(render_json(&[]), "{\n  \"version\": 1,\n  \"findings\": [\n  ]\n}\n");
}

// ---------------------------------------------------------------------------
// determinism: byte-identical output, independent of input file order
// ---------------------------------------------------------------------------

/// Every fixture above with at least one active finding, as one workspace.
fn mixed_fixture() -> Vec<(String, String)> {
    sources(&[
        (
            "crates/serve/src/protocol.rs",
            r#"
pub fn handle_line(line: &str) -> String {
    decode(line)
}

fn decode(line: &str) -> String {
    let parts: Vec<&str> = line.split('\t').collect();
    parts[0].to_string()
}
"#,
        ),
        (
            "crates/serve/src/service.rs",
            r#"
impl Service {
    pub fn bad_snapshot(&self) -> u64 {
        let guard = self.published.read();
        let writer = self.writer.lock();
        writer.epoch + guard.epoch
    }

    fn apply_unlogged(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }
}
"#,
        ),
        (
            "crates/serve/src/persist.rs",
            r#"
pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)
}
"#,
        ),
        (
            "crates/core/src/pipeline.rs",
            r#"
use std::thread;

pub fn fan_out() {
    let handle = thread::spawn(|| {});
    let _ = handle.join();
}
"#,
        ),
    ])
}

fn render_all(analysis: &WorkspaceAnalysis) -> (String, String) {
    let text = analysis
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    (text, render_json(&analysis.diagnostics))
}

#[test]
fn analysis_is_deterministic_and_file_order_independent() {
    let fixture = mixed_fixture();
    let (text_a, json_a) = render_all(&analyze_sources(&fixture));
    let (text_b, json_b) = render_all(&analyze_sources(&fixture));
    assert_eq!(text_a, text_b, "two runs over the same sources are byte-identical");
    assert_eq!(json_a, json_b);

    let mut reversed = fixture.clone();
    reversed.reverse();
    let (text_c, json_c) = render_all(&analyze_sources(&reversed));
    assert_eq!(text_a, text_c, "input file order must not leak into the output");
    assert_eq!(json_a, json_c);

    // The fixture covers all four semantic rules plus thread-confinement.
    let analysis = analyze_sources(&fixture);
    let rules: BTreeSet<&str> = analysis.active().iter().map(|d| d.finding.rule).collect();
    for rule in [
        "panic-reachability",
        "lock-order",
        "wal-append-before-apply",
        "durable-rename",
        "thread-confinement",
    ] {
        assert!(rules.contains(rule), "mixed fixture misses {rule}: {rules:?}");
    }
}

// ---------------------------------------------------------------------------
// lexer/parser robustness: panic-looking text in strings is not code
// ---------------------------------------------------------------------------

#[test]
fn string_contents_never_trigger_rules() {
    let analysis = analyze(&[(
        "crates/serve/src/protocol.rs",
        r##"
pub fn handle_line(line: &str) -> String {
    let help = "call .unwrap() or panic!() or index[0] as documented";
    let raw = r#"writer.lock() then published.read()"#;
    format!("{help} {raw} {line}")
}
"##,
    )]);
    assert_clean(&analysis);
}

// ---------------------------------------------------------------------------
// the on-disk broken fixture CI runs `analyze --root` against
// ---------------------------------------------------------------------------

#[test]
fn broken_fixture_workspace_trips_every_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/broken");
    let diagnostics = xtask::lint_workspace(&root).expect("fixture tree is readable");
    let rules: BTreeSet<&str> = diagnostics.iter().map(|d| d.finding.rule).collect();
    for rule in [
        "panic-reachability",
        "lock-order",
        "wal-append-before-apply",
        "durable-rename",
        "thread-confinement",
    ] {
        assert!(rules.contains(rule), "fixtures/broken misses {rule}: {rules:?}");
    }
}
