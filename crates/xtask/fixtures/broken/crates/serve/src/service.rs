//! Deliberately broken: trips `lock-order`, `wal-append-before-apply` and
//! `panic-reachability`. Never compiled — see ../../../README.md.

impl Service {
    /// lock-order: the epoch RwLock is held when the writer mutex is taken.
    pub fn stats(&self) -> u64 {
        let guard = self.published.read();
        let writer = self.writer.lock();
        writer.epoch + guard.epoch
    }

    /// wal-append-before-apply: mutates the COW head, no append anywhere.
    pub fn ingest(&mut self, records: &[Row]) {
        self.head.insert_batch(records);
    }

    /// panic-reachability entry point.
    pub fn handle_line(&self, line: &str) -> String {
        self.decode(line)
    }

    /// panic-reachability: indexing on the request path.
    fn decode(&self, line: &str) -> String {
        let parts: Vec<&str> = line.split('\t').collect();
        parts[0].to_string()
    }
}
