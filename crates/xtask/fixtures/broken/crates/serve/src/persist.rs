//! Deliberately broken: trips `durable-rename` (bare `File::create` of the
//! final path, no temp → fsync → rename). Never compiled.

pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)
}
