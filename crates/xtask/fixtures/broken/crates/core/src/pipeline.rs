//! Deliberately broken: trips `thread-confinement` (raw spawn and a held
//! `JoinHandle` outside `core::parallel`). Never compiled.

use std::thread;

pub fn fan_out(n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..n).map(|_| thread::spawn(|| {})).collect()
}
