//! String-map (FastMap-style embedding) blocking: StMT and StMNN in Table 3.
//!
//! Jin, Li and Mehrotra's technique embeds the blocking-key strings into a
//! low-dimensional Euclidean space with a FastMap-like procedure driven by
//! edit distance, then finds candidate pairs in the embedded space: either
//! every pair within a distance threshold (StMT) or each record's nearest
//! neighbours (StMNN). A uniform grid over the first two embedding
//! dimensions prunes the search; the remaining dimensions still participate
//! in the exact Euclidean distance check. The paper's Table 3 reports these
//! two techniques as by far the slowest baselines, which this implementation
//! reproduces qualitatively (embedding + neighbourhood search dominate).
//! Both phases run across worker threads on large datasets — key extraction
//! through `build_index_chunked`, embedding and candidate search through
//! `parallel_map` — with blocks stitched back in record order, so the output
//! is byte-identical for every worker count (pinned in
//! `tests/determinism.rs`).

use std::collections::HashMap;

use sablock_datasets::{Dataset, Record};
use sablock_textual::edit::levenshtein;
use sablock_textual::similarity::{SimilarityFunction, StringSimilarity};

use sablock_core::blocking::{Block, BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};
use sablock_core::parallel::{parallel_map, resolve_threads};

use crate::key::BlockingKey;
use crate::{build_index_chunked, record_id_of_index};

/// A FastMap-style embedding of strings into `dimensions`-dimensional space.
///
/// Each dimension is defined by a pivot pair `(a, b)`; the coordinate of a
/// string `x` is the standard FastMap projection
/// `(d(x,a)² + d(a,b)² − d(x,b)²) / (2·d(a,b))` with `d` = edit distance.
/// Pivots are chosen deterministically by a farthest-point heuristic.
#[derive(Debug, Clone)]
pub struct StringMapEmbedding {
    pivots: Vec<(String, String)>,
}

impl StringMapEmbedding {
    /// Builds an embedding from the distinct strings of a corpus.
    pub fn fit(strings: &[String], dimensions: usize) -> Result<Self> {
        if dimensions == 0 {
            return Err(CoreError::Config("the embedding needs at least one dimension".into()));
        }
        let distinct: Vec<&String> = {
            let mut seen = std::collections::HashSet::new();
            strings.iter().filter(|s| !s.is_empty() && seen.insert(s.as_str())).collect()
        };
        if distinct.len() < 2 {
            return Err(CoreError::Config("the embedding needs at least two distinct non-empty strings".into()));
        }
        let mut pivots = Vec::with_capacity(dimensions);
        for dim in 0..dimensions {
            // Farthest-point heuristic seeded deterministically by dimension.
            let start = &distinct[dim % distinct.len()];
            let a = farthest_from(start, &distinct);
            let b = farthest_from(a, &distinct);
            pivots.push(((*a).clone(), (*b).clone()));
        }
        Ok(Self { pivots })
    }

    /// Number of dimensions.
    pub fn dimensions(&self) -> usize {
        self.pivots.len()
    }

    /// Embeds one string.
    pub fn embed(&self, s: &str) -> Vec<f64> {
        self.pivots
            .iter()
            .map(|(a, b)| {
                let d_ab = levenshtein(a, b) as f64;
                if d_ab == 0.0 {
                    return 0.0;
                }
                let d_xa = levenshtein(s, a) as f64;
                let d_xb = levenshtein(s, b) as f64;
                (d_xa * d_xa + d_ab * d_ab - d_xb * d_xb) / (2.0 * d_ab)
            })
            .collect()
    }
}

fn farthest_from<'a>(origin: &str, strings: &[&'a String]) -> &'a String {
    strings
        .iter()
        .max_by_key(|s| levenshtein(origin, s))
        .expect("strings is non-empty")
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Shared preparation for both string-map variants: key values, embedding,
/// embedded points and the 2-D grid index over the first two dimensions.
struct Prepared {
    keyed: Vec<(usize, String)>,
    points: Vec<Vec<f64>>,
    grid: HashMap<(i64, i64), Vec<usize>>,
    cell: f64,
}

fn prepare(
    dataset: &Dataset,
    key: &BlockingKey,
    dimensions: usize,
    grid_cell: f64,
    threads: Option<usize>,
) -> Result<Option<Prepared>> {
    key.validate_against(dataset)?;
    // Key extraction is chunked through `build_index_chunked` (records are
    // dense, so `record.id().index()` is the global position and per-chunk
    // vectors append back in record order — byte-identical to a sequential
    // pass for every worker count).
    let keyed: Vec<(usize, String)> = build_index_chunked(
        dataset.records(),
        threads,
        |records: &[Record]| {
            records
                .iter()
                .map(|r| (r.id().index(), key.compact_value(r)))
                .filter(|(_, v)| !v.is_empty())
                .collect::<Vec<_>>()
        },
        |merged, partial| merged.extend(partial),
    );
    if keyed.len() < 2 {
        return Ok(None);
    }
    let strings: Vec<String> = keyed.iter().map(|(_, v)| v.clone()).collect();
    let embedding = StringMapEmbedding::fit(&strings, dimensions)?;
    // Embedding a string costs `3 · dimensions` edit-distance evaluations —
    // the dominant cost of string-map blocking — and each string embeds
    // independently, so the projection runs across workers.
    let resolved = resolve_threads(threads, strings.len());
    let points: Vec<Vec<f64>> = parallel_map(&strings, resolved, |s| embedding.embed(s));

    let cell = grid_cell.max(1e-9);
    let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (idx, point) in points.iter().enumerate() {
        let gx = (point[0] / cell).floor() as i64;
        let gy = (point.get(1).copied().unwrap_or(0.0) / cell).floor() as i64;
        grid.entry((gx, gy)).or_default().push(idx);
    }
    Ok(Some(Prepared { keyed, points, grid, cell }))
}

/// Neighbouring grid cells (3×3 neighbourhood) of a point.
fn neighbourhood(prepared: &Prepared, idx: usize) -> Vec<usize> {
    let point = &prepared.points[idx];
    let gx = (point[0] / prepared.cell).floor() as i64;
    let gy = (point.get(1).copied().unwrap_or(0.0) / prepared.cell).floor() as i64;
    let mut out = Vec::new();
    for dx in -1..=1 {
        for dy in -1..=1 {
            if let Some(members) = prepared.grid.get(&(gx + dx, gy + dy)) {
                out.extend(members.iter().copied());
            }
        }
    }
    out
}

/// Threshold-based string-map blocking (StMT).
#[derive(Debug, Clone)]
pub struct StringMapThreshold {
    key: BlockingKey,
    dimensions: usize,
    grid_cell: f64,
    similarity: SimilarityFunction,
    threshold: f64,
    threads: Option<usize>,
}

impl StringMapThreshold {
    /// Creates the blocker. The paper sweeps the grid size, the mapping
    /// dimension (15 or 20), the string similarity function and the
    /// thresholds (e.g. 0.9/0.8).
    pub fn new(key: BlockingKey, dimensions: usize, grid_cell: f64, similarity: SimilarityFunction, threshold: f64) -> Result<Self> {
        if dimensions == 0 {
            return Err(CoreError::Config("dimensions must be > 0".into()));
        }
        if grid_cell <= 0.0 {
            return Err(CoreError::Config("grid_cell must be positive".into()));
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CoreError::Config("threshold must be in [0, 1]".into()));
        }
        Ok(Self {
            key,
            dimensions,
            grid_cell,
            similarity,
            threshold,
            threads: None,
        })
    }

    /// Pins the worker-thread count for the embedding and candidate-search
    /// phases (clamped to at least 1). Output is identical for every thread
    /// count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for StringMapThreshold {
    fn name(&self) -> String {
        format!(
            "StMT(d={},cell={},{},t={},{})",
            self.dimensions,
            self.grid_cell,
            self.similarity.name(),
            self.threshold,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        let Some(prepared) = prepare(dataset, &self.key, self.dimensions, self.grid_cell, self.threads)? else {
            return Ok(BlockCollection::new());
        };
        // Each embedded point's candidate search is independent: the grid
        // neighbourhood, the embedded-space screen and the string-similarity
        // check read only shared immutable state, so the per-record loop runs
        // across workers and stitches blocks back in record order.
        let indices: Vec<usize> = (0..prepared.keyed.len()).collect();
        let threads = resolve_threads(self.threads, prepared.keyed.len());
        let blocks: Vec<Option<Block>> = parallel_map(&indices, threads, |&idx| {
            let mut members = vec![record_id_of_index(prepared.keyed[idx].0)];
            for other in neighbourhood(&prepared, idx) {
                if other <= idx {
                    continue;
                }
                // Cheap embedded-space screen followed by the configured
                // string-similarity threshold check on the actual key values.
                let embedded_close = euclidean(&prepared.points[idx], &prepared.points[other]) <= 2.0 * prepared.cell;
                if !embedded_close {
                    continue;
                }
                let sim = self.similarity.similarity(&prepared.keyed[idx].1, &prepared.keyed[other].1);
                if sim >= self.threshold {
                    members.push(record_id_of_index(prepared.keyed[other].0));
                }
            }
            (members.len() >= 2).then(|| Block::new(format!("stmt{idx}"), members))
        });
        Ok(BlockCollection::from_blocks(blocks.into_iter().flatten().collect()))
    }
}

/// Nearest-neighbour string-map blocking (StMNN).
#[derive(Debug, Clone)]
pub struct StringMapNearestNeighbour {
    key: BlockingKey,
    dimensions: usize,
    grid_cell: f64,
    neighbours: usize,
    threads: Option<usize>,
}

impl StringMapNearestNeighbour {
    /// Creates the blocker with the number of nearest neighbours each record
    /// is blocked with.
    pub fn new(key: BlockingKey, dimensions: usize, grid_cell: f64, neighbours: usize) -> Result<Self> {
        if dimensions == 0 {
            return Err(CoreError::Config("dimensions must be > 0".into()));
        }
        if grid_cell <= 0.0 {
            return Err(CoreError::Config("grid_cell must be positive".into()));
        }
        if neighbours == 0 {
            return Err(CoreError::Config("neighbours must be > 0".into()));
        }
        Ok(Self {
            key,
            dimensions,
            grid_cell,
            neighbours,
            threads: None,
        })
    }

    /// Pins the worker-thread count for the embedding and candidate-search
    /// phases (clamped to at least 1). Output is identical for every thread
    /// count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for StringMapNearestNeighbour {
    fn name(&self) -> String {
        format!(
            "StMNN(d={},cell={},nn={},{})",
            self.dimensions,
            self.grid_cell,
            self.neighbours,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        let Some(prepared) = prepare(dataset, &self.key, self.dimensions, self.grid_cell, self.threads)? else {
            return Ok(BlockCollection::new());
        };
        // Per-record nearest-neighbour searches are independent reads of
        // shared state (see `StringMapThreshold::block`), so they run across
        // workers; the stable sort keeps equal distances in neighbourhood
        // order, which is itself deterministic.
        let indices: Vec<usize> = (0..prepared.keyed.len()).collect();
        let threads = resolve_threads(self.threads, prepared.keyed.len());
        let blocks: Vec<Option<Block>> = parallel_map(&indices, threads, |&idx| {
            let mut candidates: Vec<(usize, f64)> = neighbourhood(&prepared, idx)
                .into_iter()
                .filter(|&other| other != idx)
                .map(|other| (other, euclidean(&prepared.points[idx], &prepared.points[other])))
                .collect();
            candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            candidates.dedup_by_key(|(other, _)| *other);
            let mut members = vec![record_id_of_index(prepared.keyed[idx].0)];
            members.extend(
                candidates
                    .into_iter()
                    .take(self.neighbours)
                    .map(|(other, _)| record_id_of_index(prepared.keyed[other].0)),
            );
            (members.len() >= 2).then(|| Block::new(format!("stmnn{idx}"), members))
        });
        Ok(BlockCollection::from_blocks(blocks.into_iter().flatten().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::RecordId;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn key() -> BlockingKey {
        BlockingKey::exact(["last_name", "first_name"]).unwrap()
    }

    fn people() -> Dataset {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        let rows = [
            ("anna", "anderson", 0),
            ("ana", "anderson", 0),
            ("anna", "andersen", 0),
            ("william", "shakespeare", 1),
            ("bill", "shakespere", 1),
            ("xu", "li", 2),
        ];
        for (f, l, e) in rows {
            b.push_values(vec![Some(f.into()), Some(l.into())], EntityId(e)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn embedding_reflects_edit_distance_structure() {
        let strings: Vec<String> = vec![
            "andersonanna".into(),
            "andersonana".into(),
            "shakespearewilliam".into(),
            "lixu".into(),
        ];
        let embedding = StringMapEmbedding::fit(&strings, 4).unwrap();
        assert_eq!(embedding.dimensions(), 4);
        let p: Vec<Vec<f64>> = strings.iter().map(|s| embedding.embed(s)).collect();
        let close = euclidean(&p[0], &p[1]);
        let far = euclidean(&p[0], &p[2]);
        assert!(close < far, "similar strings must embed closer ({close} vs {far})");
    }

    #[test]
    fn embedding_construction_validation() {
        assert!(StringMapEmbedding::fit(&["a".into(), "b".into()], 0).is_err());
        assert!(StringMapEmbedding::fit(&["only".into()], 3).is_err());
        assert!(StringMapEmbedding::fit(&[], 3).is_err());
        // Identical strings collapse to a single distinct value.
        assert!(StringMapEmbedding::fit(&["x".into(), "x".into()], 2).is_err());
    }

    #[test]
    fn threshold_variant_blocks_similar_names() {
        let ds = people();
        let blocker = StringMapThreshold::new(key(), 6, 2.0, SimilarityFunction::JaroWinkler, 0.85).unwrap();
        assert!(blocker.name().contains("StMT"));
        let blocks = blocker.block(&ds).unwrap();
        assert!(blocks.theta(RecordId(0), RecordId(1)), "anderson variants should block together");
        assert!(!blocks.theta(RecordId(0), RecordId(5)), "anderson and li must not block together");
    }

    #[test]
    fn nearest_neighbour_variant_links_each_record_to_close_names() {
        let ds = people();
        let blocker = StringMapNearestNeighbour::new(key(), 6, 5.0, 2).unwrap();
        assert!(blocker.name().contains("StMNN"));
        let blocks = blocker.block(&ds).unwrap();
        // Every keyed record forms a block with its nearest neighbours, so the
        // anderson cluster and the shakespeare pair are both recovered.
        assert!(blocks.theta(RecordId(0), RecordId(1)) || blocks.theta(RecordId(0), RecordId(2)));
        assert!(blocks.theta(RecordId(3), RecordId(4)));
    }

    #[test]
    fn parameter_validation() {
        assert!(StringMapThreshold::new(key(), 0, 1.0, SimilarityFunction::Jaro, 0.8).is_err());
        assert!(StringMapThreshold::new(key(), 5, 0.0, SimilarityFunction::Jaro, 0.8).is_err());
        assert!(StringMapThreshold::new(key(), 5, 1.0, SimilarityFunction::Jaro, 1.5).is_err());
        assert!(StringMapNearestNeighbour::new(key(), 5, 1.0, 0).is_err());
        assert!(StringMapNearestNeighbour::new(key(), 0, 1.0, 3).is_err());
    }

    #[test]
    fn degenerate_datasets_produce_empty_blockings() {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("tiny", schema);
        b.push_values(vec![Some("solo".into()), Some("person".into())], EntityId(0)).unwrap();
        let ds = b.build().unwrap();
        let blocks = StringMapThreshold::new(key(), 4, 1.0, SimilarityFunction::Jaro, 0.8).unwrap().block(&ds).unwrap();
        assert_eq!(blocks.num_blocks(), 0);
        let blocks = StringMapNearestNeighbour::new(key(), 4, 1.0, 2).unwrap().block(&ds).unwrap();
        assert_eq!(blocks.num_blocks(), 0);
    }

    #[test]
    fn thread_count_does_not_change_blocks() {
        let ds = people();
        let build_t = |t: usize| {
            StringMapThreshold::new(key(), 6, 2.0, SimilarityFunction::JaroWinkler, 0.85).unwrap().with_threads(t)
        };
        assert_eq!(build_t(1).block(&ds).unwrap().blocks(), build_t(4).block(&ds).unwrap().blocks());
        let build_nn = |t: usize| StringMapNearestNeighbour::new(key(), 6, 5.0, 2).unwrap().with_threads(t);
        assert_eq!(build_nn(1).block(&ds).unwrap().blocks(), build_nn(4).block(&ds).unwrap().blocks());
    }

    #[test]
    fn unknown_key_attribute_errors() {
        let ds = people();
        assert!(StringMapThreshold::new(BlockingKey::cora(), 4, 1.0, SimilarityFunction::Jaro, 0.8)
            .unwrap()
            .block(&ds)
            .is_err());
    }
}
