//! Sorted-neighbourhood blocking: the array-based (SorA), inverted-index
//! (SorII) and adaptive (ASor) variants.
//!
//! All three sort the records by a *sorting key* (the blocking key value) and
//! then only compare records that are close in the sorted order:
//!
//! * **SorA** slides a fixed window of `w` records over the sorted array;
//!   every window position becomes a block.
//! * **SorII** slides the window over the *distinct* sorted key values (an
//!   inverted index from key value to records), which is robust to skewed
//!   keys: a frequent key value no longer monopolises the window.
//! * **ASor** grows the window adaptively: consecutive records stay in the
//!   same block while their sorting keys are similar (string similarity above
//!   a threshold), so block boundaries fall where the sorted keys "jump".

use std::collections::HashMap;

use sablock_datasets::{Dataset, Record, RecordId};
use sablock_textual::similarity::{SimilarityFunction, StringSimilarity};

use sablock_core::blocking::{Block, BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};

use sablock_core::parallel::{merge_sorted_runs, parallel_map, resolve_threads};

use crate::key::BlockingKey;
use crate::{build_index_chunked, INDEX_CHUNK_RECORDS};

/// Sorts records by their key value; records with empty keys are excluded.
/// Ties are broken by record id so the order is total and deterministic.
///
/// Large datasets extract and sort 1,024-record chunks in parallel
/// ([`parallel_map`]) and combine the per-chunk runs with the shared
/// balanced binary merge ([`merge_sorted_runs`]) — `log₂ chunks` passes, so
/// the merge stays cheap at any chunk count, and the result is
/// byte-identical to a sequential extract-and-sort for every worker count
/// (ties between equal keys resolve by record id, which the chunking never
/// reorders).
fn sorted_by_key(dataset: &Dataset, key: &BlockingKey, threads: Option<usize>) -> Vec<(String, RecordId)> {
    let records = dataset.records();
    let extract = |records: &[Record]| -> Vec<(String, RecordId)> {
        let mut entries: Vec<(String, RecordId)> = records
            .iter()
            .filter_map(|record| {
                let value = key.value(record);
                if value.is_empty() {
                    None
                } else {
                    Some((value, record.id()))
                }
            })
            .collect();
        entries.sort();
        entries
    };
    let threads = resolve_threads(threads, records.len());
    if threads <= 1 || records.len() <= INDEX_CHUNK_RECORDS {
        return extract(records);
    }
    let chunks: Vec<&[Record]> = records.chunks(INDEX_CHUNK_RECORDS).collect();
    merge_sorted_runs(parallel_map(&chunks, threads, |chunk| extract(chunk)))
}

/// Array-based sorted neighbourhood (SorA).
#[derive(Debug, Clone)]
pub struct SortedNeighbourhoodArray {
    key: BlockingKey,
    window: usize,
    threads: Option<usize>,
}

impl SortedNeighbourhoodArray {
    /// Creates the blocker with the given window size (the paper sweeps
    /// {2, 3, 5, 7, 10}).
    pub fn new(key: BlockingKey, window: usize) -> Result<Self> {
        if window < 2 {
            return Err(CoreError::Config("the sorted-neighbourhood window must be at least 2".into()));
        }
        Ok(Self { key, window, threads: None })
    }

    /// Fixes the worker count of the sort-key extraction (by default large
    /// datasets parallelise automatically; blocks are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Blocker for SortedNeighbourhoodArray {
    fn name(&self) -> String {
        format!("SorA(w={},{})", self.window, self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let sorted = sorted_by_key(dataset, &self.key, self.threads);
        let mut blocks = Vec::new();
        if sorted.len() >= 2 {
            for (i, window) in sorted.windows(self.window.min(sorted.len())).enumerate() {
                let members: Vec<RecordId> = window.iter().map(|(_, id)| *id).collect();
                blocks.push(Block::new(format!("sna{i}"), members));
            }
        }
        Ok(BlockCollection::from_blocks(blocks))
    }
}

/// Inverted-index sorted neighbourhood (SorII).
#[derive(Debug, Clone)]
pub struct SortedNeighbourhoodInverted {
    key: BlockingKey,
    window: usize,
    threads: Option<usize>,
}

impl SortedNeighbourhoodInverted {
    /// Creates the blocker with the given window size over distinct key values.
    pub fn new(key: BlockingKey, window: usize) -> Result<Self> {
        if window < 2 {
            return Err(CoreError::Config("the sorted-neighbourhood window must be at least 2".into()));
        }
        Ok(Self { key, window, threads: None })
    }

    /// Fixes the worker count of the inverted-index construction (by default
    /// large datasets parallelise automatically; blocks are identical either
    /// way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for SortedNeighbourhoodInverted {
    fn name(&self) -> String {
        format!("SorII(w={},{})", self.window, self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        // Inverted index: distinct key value → records, in sorted key order.
        // Chunks index independently (in parallel for large datasets) and
        // posting lists merge in ascending chunk order, so each key's record
        // list stays in record order for every worker count.
        let index: HashMap<String, Vec<RecordId>> = build_index_chunked(
            dataset.records(),
            self.threads,
            |records: &[Record]| {
                let mut index: HashMap<String, Vec<RecordId>> = HashMap::new();
                for record in records {
                    let value = self.key.value(record);
                    if value.is_empty() {
                        continue;
                    }
                    index.entry(value).or_default().push(record.id());
                }
                index
            },
            |merged, partial| {
                for (value, ids) in partial {
                    merged.entry(value).or_default().extend(ids);
                }
            },
        );
        let mut distinct: Vec<(String, Vec<RecordId>)> = index.into_iter().collect();
        distinct.sort_by(|a, b| a.0.cmp(&b.0));

        let mut blocks = Vec::new();
        if !distinct.is_empty() {
            let window = self.window.min(distinct.len());
            for (i, group) in distinct.windows(window).enumerate() {
                let members: Vec<RecordId> = group.iter().flat_map(|(_, ids)| ids.iter().copied()).collect();
                blocks.push(Block::new(format!("snii{i}"), members));
            }
            // A single distinct value still forms one block of its records.
            if distinct.len() < 2 {
                blocks.push(Block::new("snii0", distinct[0].1.clone()));
            }
        }
        Ok(BlockCollection::from_blocks(blocks))
    }
}

/// Adaptive sorted neighbourhood (ASor).
#[derive(Debug, Clone)]
pub struct AdaptiveSortedNeighbourhood {
    key: BlockingKey,
    similarity: SimilarityFunction,
    threshold: f64,
    max_block_size: usize,
    threads: Option<usize>,
}

impl AdaptiveSortedNeighbourhood {
    /// Creates the blocker. The paper sweeps the string similarity function
    /// over {Jaro-Winkler, bigram, edit distance, LCS} and the threshold over
    /// {0.8, 0.9}.
    pub fn new(key: BlockingKey, similarity: SimilarityFunction, threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CoreError::Config(format!("threshold must be in [0, 1], got {threshold}")));
        }
        Ok(Self {
            key,
            similarity,
            threshold,
            max_block_size: 100,
            threads: None,
        })
    }

    /// Caps the adaptive window (default 100) so a long run of similar keys
    /// cannot degenerate into one giant block.
    pub fn with_max_block_size(mut self, size: usize) -> Self {
        self.max_block_size = size.max(2);
        self
    }

    /// Fixes the worker count of the sort-key extraction (the adaptive
    /// window scan itself is inherently sequential; blocks are identical for
    /// every worker count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for AdaptiveSortedNeighbourhood {
    fn name(&self) -> String {
        format!(
            "ASor({},t={},{})",
            self.similarity.name(),
            self.threshold,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let sorted = sorted_by_key(dataset, &self.key, self.threads);
        let mut blocks = Vec::new();
        let mut current: Vec<RecordId> = Vec::new();
        let mut previous_key: Option<&str> = None;
        let mut block_counter = 0usize;
        for (key_value, id) in &sorted {
            let extend = match previous_key {
                Some(prev) => {
                    current.len() < self.max_block_size && self.similarity.similarity(prev, key_value) >= self.threshold
                }
                None => true,
            };
            if extend {
                current.push(*id);
            } else {
                blocks.push(Block::new(format!("asor{block_counter}"), std::mem::take(&mut current)));
                block_counter += 1;
                current.push(*id);
            }
            previous_key = Some(key_value.as_str());
        }
        if !current.is_empty() {
            blocks.push(Block::new(format!("asor{block_counter}"), current));
        }
        Ok(BlockCollection::from_blocks(blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    /// A dataset where the sorted order of last names puts duplicates next to
    /// each other but never with identical keys.
    fn people() -> Dataset {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        let rows = [
            ("anna", "anderson", 0),
            ("anne", "anderson", 0),
            ("bob", "baker", 1),
            ("bobby", "baker", 1),
            ("carl", "carter", 2),
            ("dave", "davis", 3),
            ("david", "davies", 3),
            ("zed", "zhou", 4),
        ];
        for (f, l, e) in rows {
            b.push_values(vec![Some(f.into()), Some(l.into())], EntityId(e)).unwrap();
        }
        b.build().unwrap()
    }

    fn last_first_key() -> BlockingKey {
        BlockingKey::exact(["last_name", "first_name"]).unwrap()
    }

    #[test]
    fn window_validation() {
        assert!(SortedNeighbourhoodArray::new(last_first_key(), 1).is_err());
        assert!(SortedNeighbourhoodInverted::new(last_first_key(), 0).is_err());
        assert!(AdaptiveSortedNeighbourhood::new(last_first_key(), SimilarityFunction::JaroWinkler, 1.5).is_err());
        let sna = SortedNeighbourhoodArray::new(last_first_key(), 3).unwrap();
        assert_eq!(sna.window(), 3);
        assert!(sna.name().contains("SorA"));
    }

    #[test]
    fn array_window_blocks_neighbours() {
        let ds = people();
        let blocks = SortedNeighbourhoodArray::new(last_first_key(), 2).unwrap().block(&ds).unwrap();
        // Adjacent in sorted order: the two andersons, the two bakers, davies/davis.
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        assert!(blocks.theta(RecordId(2), RecordId(3)));
        assert!(blocks.theta(RecordId(5), RecordId(6)));
        // Far apart in sorted order: anderson vs zhou.
        assert!(!blocks.theta(RecordId(0), RecordId(7)));
        // Window w over n records yields n-w+1 blocks.
        assert_eq!(blocks.num_blocks(), 8 - 2 + 1);
    }

    #[test]
    fn larger_windows_capture_more_pairs() {
        let ds = people();
        let small = SortedNeighbourhoodArray::new(last_first_key(), 2).unwrap().block(&ds).unwrap();
        let large = SortedNeighbourhoodArray::new(last_first_key(), 5).unwrap().block(&ds).unwrap();
        assert!(large.num_distinct_pairs() > small.num_distinct_pairs());
        let small_pairs = small.distinct_pairs();
        let large_pairs = large.distinct_pairs();
        assert!(small_pairs.iter().all(|p| large_pairs.contains(p)), "window growth must be monotone");
    }

    #[test]
    fn inverted_index_variant_handles_duplicate_keys() {
        // Give two records identical keys: SorII treats them as one index entry.
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("dups", schema);
        for (f, l, e) in [("al", "smith", 0), ("al", "smith", 0), ("bo", "smith", 1), ("cy", "young", 2)] {
            b.push_values(vec![Some(f.into()), Some(l.into())], EntityId(e)).unwrap();
        }
        let ds = b.build().unwrap();
        let blocks = SortedNeighbourhoodInverted::new(last_first_key(), 2).unwrap().block(&ds).unwrap();
        // The two "smith al" records share an index entry and hence a block.
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        // Window of 2 distinct values links "smith al" with "smith bo".
        assert!(blocks.theta(RecordId(0), RecordId(2)));
    }

    #[test]
    fn single_distinct_key_still_blocks() {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("one-key", schema);
        for _ in 0..3 {
            b.push_values(vec![Some("qing".into()), Some("wang".into())], EntityId(0)).unwrap();
        }
        let ds = b.build().unwrap();
        let blocks = SortedNeighbourhoodInverted::new(last_first_key(), 3).unwrap().block(&ds).unwrap();
        assert_eq!(blocks.num_distinct_pairs(), 3);
    }

    #[test]
    fn adaptive_blocks_break_at_dissimilar_keys() {
        let ds = people();
        let blocks = AdaptiveSortedNeighbourhood::new(last_first_key(), SimilarityFunction::JaroWinkler, 0.8)
            .unwrap()
            .block(&ds)
            .unwrap();
        // Similar adjacent keys stay together.
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        assert!(blocks.theta(RecordId(5), RecordId(6)));
        // Keys from different families are split apart.
        assert!(!blocks.theta(RecordId(0), RecordId(7)));
        assert!(!blocks.theta(RecordId(1), RecordId(4)));
    }

    #[test]
    fn adaptive_block_size_cap_is_respected() {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("run", schema);
        for i in 0..50 {
            b.push_values(vec![Some(format!("p{i:02}")), Some("smith".into())], EntityId(i)).unwrap();
        }
        let ds = b.build().unwrap();
        let blocks = AdaptiveSortedNeighbourhood::new(last_first_key(), SimilarityFunction::QGram(2), 0.5)
            .unwrap()
            .with_max_block_size(10)
            .block(&ds)
            .unwrap();
        assert!(blocks.max_block_size() <= 10);
        assert!(blocks.num_blocks() >= 5);
    }

    #[test]
    fn with_threads_does_not_change_blocks() {
        let ds = people();
        for window in [2usize, 4] {
            let sequential = SortedNeighbourhoodArray::new(last_first_key(), window).unwrap().block(&ds).unwrap();
            let threaded = SortedNeighbourhoodArray::new(last_first_key(), window)
                .unwrap()
                .with_threads(4)
                .block(&ds)
                .unwrap();
            assert_eq!(sequential.blocks(), threaded.blocks(), "SorA w={window}");
        }
        let sequential = SortedNeighbourhoodInverted::new(last_first_key(), 2).unwrap().block(&ds).unwrap();
        let threaded = SortedNeighbourhoodInverted::new(last_first_key(), 2).unwrap().with_threads(4).block(&ds).unwrap();
        assert_eq!(sequential.blocks(), threaded.blocks(), "SorII");
        let adaptive = |t: Option<usize>| {
            let blocker = AdaptiveSortedNeighbourhood::new(last_first_key(), SimilarityFunction::JaroWinkler, 0.8).unwrap();
            match t {
                Some(t) => blocker.with_threads(t),
                None => blocker,
            }
            .block(&ds)
            .unwrap()
        };
        assert_eq!(adaptive(None).blocks(), adaptive(Some(4)).blocks(), "ASor");
    }

    #[test]
    fn unknown_key_attributes_error() {
        let ds = people();
        assert!(SortedNeighbourhoodArray::new(BlockingKey::cora(), 3).unwrap().block(&ds).is_err());
        assert!(SortedNeighbourhoodInverted::new(BlockingKey::cora(), 3).unwrap().block(&ds).is_err());
        assert!(AdaptiveSortedNeighbourhood::new(BlockingKey::cora(), SimilarityFunction::Jaro, 0.8)
            .unwrap()
            .block(&ds)
            .is_err());
    }
}
