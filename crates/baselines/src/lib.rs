//! Baseline blocking techniques and meta-blocking.
//!
//! The paper's evaluation (§6.3.4, Table 3, Fig. 11, Fig. 12) compares the
//! semantic-aware LSH blocker against the twelve state-of-the-art techniques
//! of Christen's indexing survey and against meta-blocking. This crate
//! re-implements every one of them behind the same
//! [`Blocker`](sablock_core::blocking::Blocker) trait, so the evaluation
//! harness can sweep their parameter grids uniformly:
//!
//! | Abbrev. | Technique | Module |
//! |---|---|---|
//! | TBlo | traditional/standard blocking | [`standard`] |
//! | SorA | array-based sorted neighbourhood | [`sorted`] |
//! | SorII | inverted-index sorted neighbourhood | [`sorted`] |
//! | ASor | adaptive sorted neighbourhood | [`sorted`] |
//! | QGr | q-gram based indexing | [`qgram`] |
//! | CaTh | threshold-based canopy clustering | [`canopy`] |
//! | CaNN | nearest-neighbour canopy clustering | [`canopy`] |
//! | StMT | threshold-based string-map blocking | [`stringmap`] |
//! | StMNN | nearest-neighbour string-map blocking | [`stringmap`] |
//! | SuA | suffix-array blocking | [`suffix`] |
//! | SuAS | suffix-array blocking (all substrings) | [`suffix`] |
//! | RSuA | robust suffix-array blocking | [`suffix`] |
//! | — | token blocking (meta-blocking input) | [`standard`] |
//! | WEP/CEP/WNP/CNP × ARCS/CBS/ECBS/JS/EJS | meta-blocking | [`meta`] |
//!
//! [`params`] reproduces the parameter grids the paper sweeps (163 settings
//! for Cora, 161 for NC Voter).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canopy;
pub mod key;
pub mod meta;
pub mod params;
pub mod qgram;
pub mod sorted;
pub mod standard;
pub mod stringmap;
pub mod suffix;

pub use canopy::{CanopyNearestNeighbour, CanopySimilarity, CanopyThreshold};
pub use key::{BlockingKey, KeyEncoding};
pub use meta::{MetaBlocking, PruningAlgorithm, WeightingScheme};
pub use qgram::QGramBlocking;
pub use sorted::{AdaptiveSortedNeighbourhood, SortedNeighbourhoodArray, SortedNeighbourhoodInverted};
pub use standard::{StandardBlocking, TokenBlocking};
pub use stringmap::{StringMapNearestNeighbour, StringMapThreshold};
pub use suffix::{AllSubstringsBlocking, RobustSuffixArrayBlocking, SuffixArrayBlocking};

/// How many records one chunk of a parallel bucket/index construction
/// covers (suffix-array and q-gram blocking).
pub(crate) const INDEX_CHUNK_RECORDS: usize = 1_024;

/// Checked dense-index → [`RecordId`](sablock_datasets::RecordId)
/// conversion for indices obtained by enumerating a dataset's records.
/// `DatasetBuilder` already bounds datasets to `MAX_RECORD_ID` records, so
/// the conversion can only fail on an index that never came from a dataset.
pub(crate) fn record_id_of_index(index: usize) -> sablock_datasets::RecordId {
    sablock_datasets::RecordId::try_from_index(index)
        .expect("dataset record ids are validated at construction")
}

/// Builds a record-keyed index in parallel: `index_chunk` indexes one run of
/// records into a fresh map, chunks are processed via
/// [`parallel_map`](sablock_core::parallel::parallel_map), and `merge_into`
/// folds the per-chunk maps together **in ascending chunk order** — so as
/// long as `merge_into` appends posting lists, the merged index is
/// byte-identical to a sequential build for every worker count. The worker
/// count comes from [`resolve_threads`](sablock_core::parallel::resolve_threads):
/// explicit configuration wins, otherwise datasets of at least
/// [`PARALLEL_THRESHOLD`](sablock_core::parallel::PARALLEL_THRESHOLD)
/// records parallelise automatically.
pub(crate) fn build_index_chunked<M, F, G>(
    records: &[sablock_datasets::Record],
    threads: Option<usize>,
    index_chunk: F,
    mut merge_into: G,
) -> M
where
    M: Send,
    F: Fn(&[sablock_datasets::Record]) -> M + Sync,
    G: FnMut(&mut M, M),
{
    let threads = sablock_core::parallel::resolve_threads(threads, records.len());
    if threads <= 1 || records.len() <= INDEX_CHUNK_RECORDS {
        return index_chunk(records);
    }
    let chunks: Vec<&[sablock_datasets::Record]> = records.chunks(INDEX_CHUNK_RECORDS).collect();
    let mut partials = sablock_core::parallel::parallel_map(&chunks, threads, |chunk| index_chunk(chunk)).into_iter();
    let mut merged = partials.next().expect("at least one chunk");
    for partial in partials {
        merge_into(&mut merged, partial);
    }
    merged
}
