//! Q-gram based indexing (QGr in Table 3).
//!
//! Each record's blocking-key value is decomposed into its q-gram list; the
//! record is then indexed not only under the full list but also under
//! *sub-lists* obtained by deleting q-grams, down to a minimum length of
//! `⌈len · threshold⌉` grams. Two records whose key values share enough
//! q-grams therefore collide on at least one sub-list even if their full
//! q-gram lists differ (tolerating typos), at the cost of an exponential
//! number of sub-lists — which is why the survey's implementation (and ours)
//! caps recursion depth.

use std::collections::{BTreeSet, HashMap};

use sablock_datasets::{Dataset, Record, RecordId};
use sablock_textual::qgrams::qgrams;

use sablock_core::blocking::{BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};

use crate::build_index_chunked;
use crate::key::BlockingKey;

/// Q-gram indexing.
#[derive(Debug, Clone)]
pub struct QGramBlocking {
    key: BlockingKey,
    q: usize,
    threshold: f64,
    max_sublists_per_record: usize,
    threads: Option<usize>,
}

impl QGramBlocking {
    /// Creates the blocker. The paper sweeps `q ∈ {2, 3}` and the length
    /// threshold over `{0.8, 0.9}`.
    pub fn new(key: BlockingKey, q: usize, threshold: f64) -> Result<Self> {
        if q == 0 {
            return Err(CoreError::Config("q must be > 0".into()));
        }
        if !(0.0 < threshold && threshold <= 1.0) {
            return Err(CoreError::Config(format!("threshold must be in (0, 1], got {threshold}")));
        }
        Ok(Self {
            key,
            q,
            threshold,
            max_sublists_per_record: 64,
            threads: None,
        })
    }

    /// Fixes the worker count of the bucket construction (by default large
    /// datasets parallelise automatically; blocks are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Caps the number of sub-lists generated per record (default 64); keys
    /// long enough to exceed the cap are indexed under single-deletion
    /// sub-lists only, which keeps the technique tractable on long keys.
    pub fn with_max_sublists(mut self, cap: usize) -> Self {
        self.max_sublists_per_record = cap.max(1);
        self
    }

    /// The index keys (joined sub-lists) a key value is indexed under.
    fn index_keys(&self, key_value: &str) -> Vec<String> {
        let grams = qgrams(key_value, self.q);
        if grams.is_empty() {
            return Vec::new();
        }
        let min_len = ((grams.len() as f64) * self.threshold).ceil().max(1.0) as usize;
        let mut results: BTreeSet<Vec<String>> = BTreeSet::new();
        results.insert(grams.clone());

        // Breadth-first deletion of grams down to min_len, bounded by the cap.
        let mut frontier: Vec<Vec<String>> = vec![grams];
        while let Some(list) = frontier.pop() {
            if results.len() >= self.max_sublists_per_record {
                break;
            }
            if list.len() <= min_len {
                continue;
            }
            for i in 0..list.len() {
                let mut shorter = list.clone();
                shorter.remove(i);
                if results.insert(shorter.clone()) {
                    frontier.push(shorter);
                    if results.len() >= self.max_sublists_per_record {
                        break;
                    }
                }
            }
        }
        results.into_iter().map(|list| list.join("\u{1}")).collect()
    }
}

impl Blocker for QGramBlocking {
    fn name(&self) -> String {
        format!("QGr(q={},t={},{})", self.q, self.threshold, self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        // Sub-list generation is independent per record: chunks of records
        // are indexed in parallel via `build_index_chunked` and the
        // per-chunk buckets merged in ascending chunk order, preserving the
        // sequential build's posting-list order exactly (`from_key_map` then
        // sorts by key, so the final blocks are identical for every worker
        // count).
        let bucket_chunk = |records: &[Record]| {
            let mut buckets: HashMap<String, Vec<RecordId>> = HashMap::new();
            for record in records {
                let key_value = self.key.compact_value(record);
                if key_value.is_empty() {
                    continue;
                }
                for index_key in self.index_keys(&key_value) {
                    buckets.entry(index_key).or_default().push(record.id());
                }
            }
            buckets
        };
        let buckets = build_index_chunked(dataset.records(), self.threads, bucket_chunk, |buckets, partial| {
            for (k, mut ids) in partial {
                buckets.entry(k).or_default().append(&mut ids);
            }
        });
        Ok(BlockCollection::from_key_map(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn key() -> BlockingKey {
        BlockingKey::exact(["last_name"]).unwrap()
    }

    fn people(names: &[(&str, u32)]) -> Dataset {
        let schema = Schema::shared(["last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        for (name, e) in names {
            b.push_values(vec![Some((*name).into())], EntityId(*e)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(QGramBlocking::new(key(), 0, 0.8).is_err());
        assert!(QGramBlocking::new(key(), 2, 0.0).is_err());
        assert!(QGramBlocking::new(key(), 2, 1.2).is_err());
        let b = QGramBlocking::new(key(), 2, 0.8).unwrap();
        assert!(b.name().contains("QGr"));
    }

    #[test]
    fn sublists_respect_threshold_and_cap() {
        let blocker = QGramBlocking::new(key(), 2, 0.8).unwrap();
        // "wang" -> grams [wa, an, ng], min_len = ceil(3*0.8) = 3 → only the full list.
        assert_eq!(blocker.index_keys("wang").len(), 1);
        // threshold 0.6 → min_len = 2 → full list + 3 single-deletion lists.
        let blocker = QGramBlocking::new(key(), 2, 0.6).unwrap();
        assert_eq!(blocker.index_keys("wang").len(), 4);
        // The cap bounds the explosion on long keys.
        let blocker = QGramBlocking::new(key(), 2, 0.5).unwrap().with_max_sublists(10);
        assert!(blocker.index_keys("averyveryverylongblockingkeyvalue").len() <= 10);
        assert!(blocker.index_keys("").is_empty());
    }

    #[test]
    fn typo_variants_share_a_sublist() {
        // "wang" (3 bigrams) vs "wangg" (4 bigrams): with threshold 0.75 the
        // longer key may drop one gram (min length ⌈4·0.75⌉ = 3) and meet the
        // shorter key's full gram list.
        let ds = people(&[("wang", 0), ("wangg", 0), ("liang", 1)]);
        let blocks = QGramBlocking::new(key(), 2, 0.75).unwrap().block(&ds).unwrap();
        assert!(blocks.theta(RecordId(0), RecordId(1)), "single-character typo should be recovered");
        assert!(!blocks.theta(RecordId(0), RecordId(2)));
    }

    #[test]
    fn exact_duplicates_always_collide() {
        let ds = people(&[("carter", 0), ("carter", 0), ("baker", 1)]);
        let blocks = QGramBlocking::new(key(), 3, 0.9).unwrap().block(&ds).unwrap();
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        assert!(!blocks.theta(RecordId(0), RecordId(2)));
    }

    #[test]
    fn lower_thresholds_are_more_permissive() {
        let ds = people(&[("anderson", 0), ("andersen", 0), ("anderson", 0), ("zhou", 1)]);
        let strict = QGramBlocking::new(key(), 2, 0.9).unwrap().block(&ds).unwrap();
        let loose = QGramBlocking::new(key(), 2, 0.7).unwrap().block(&ds).unwrap();
        assert!(loose.num_distinct_pairs() >= strict.num_distinct_pairs());
        assert!(loose.theta(RecordId(0), RecordId(1)), "o→e substitution recovered at 0.7");
    }

    #[test]
    fn unknown_key_attribute_errors() {
        let ds = people(&[("wang", 0)]);
        assert!(QGramBlocking::new(BlockingKey::cora(), 2, 0.8).unwrap().block(&ds).is_err());
    }
}
