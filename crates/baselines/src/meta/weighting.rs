//! The five edge-weighting schemes of meta-blocking: ARCS, CBS, ECBS, JS and
//! EJS.

use sablock_datasets::record::RecordPair;

use super::BlockingGraph;

/// An edge-weighting scheme for the blocking graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons Scheme: Σ over shared blocks of
    /// `1 / ||b||` — small blocks are strong evidence.
    Arcs,
    /// Common Blocks Scheme: the number of shared blocks.
    Cbs,
    /// Enhanced Common Blocks Scheme: CBS damped by how prolific each record
    /// is across blocks.
    Ecbs,
    /// Jaccard Scheme: shared blocks over the union of the two records'
    /// blocks.
    Js,
    /// Enhanced Jaccard Scheme: JS damped by the records' degrees in the
    /// blocking graph.
    Ejs,
}

impl WeightingScheme {
    /// All schemes, in the order used by the paper's Fig. 12.
    pub const ALL: [WeightingScheme; 5] = [
        WeightingScheme::Arcs,
        WeightingScheme::Cbs,
        WeightingScheme::Ecbs,
        WeightingScheme::Js,
        WeightingScheme::Ejs,
    ];

    /// The abbreviation used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Arcs => "ARCS",
            Self::Cbs => "CBS",
            Self::Ecbs => "ECBS",
            Self::Js => "JS",
            Self::Ejs => "EJS",
        }
    }

    /// Computes the weight of an edge given the blocking graph and the list
    /// of shared block indices (a borrowed slice of the graph's CSR edge
    /// storage).
    pub fn weight(&self, graph: &BlockingGraph, pair: &RecordPair, shared_blocks: &[u32]) -> f64 {
        let common = shared_blocks.len() as f64;
        if common == 0.0 {
            return 0.0;
        }
        let blocks_i = graph.blocks_of(pair.first()) as f64;
        let blocks_j = graph.blocks_of(pair.second()) as f64;
        match self {
            Self::Arcs => shared_blocks
                .iter()
                .map(|&b| 1.0 / graph.block_cardinality(b as usize) as f64)
                .sum(),
            Self::Cbs => common,
            Self::Ecbs => {
                let total = graph.num_blocks() as f64;
                common * safe_log(total / blocks_i) * safe_log(total / blocks_j)
            }
            Self::Js => common / (blocks_i + blocks_j - common),
            Self::Ejs => {
                let js = common / (blocks_i + blocks_j - common);
                let edges = graph.num_edges() as f64;
                let deg_i = graph.degree(pair.first()).max(1) as f64;
                let deg_j = graph.degree(pair.second()).max(1) as f64;
                js * safe_log(edges / deg_i) * safe_log(edges / deg_j)
            }
        }
    }
}

/// log10 guarded against ratios ≤ 1 collapsing weights to zero or negative
/// values (a record appearing in every block would otherwise zero out all of
/// its edges).
fn safe_log(ratio: f64) -> f64 {
    ratio.max(1.0 + 1e-9).log10().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::blocking::{Block, BlockCollection};
    use sablock_datasets::RecordId;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    fn graph() -> BlockingGraph {
        BlockingGraph::build(&BlockCollection::from_blocks(vec![
            Block::new("b0", vec![rid(0), rid(1)]),
            Block::new("b1", vec![rid(0), rid(1), rid(2)]),
            Block::new("b2", vec![rid(0), rid(1)]),
            Block::new("b3", vec![rid(2), rid(3), rid(4), rid(5)]),
        ]))
    }

    #[test]
    fn cbs_counts_common_blocks() {
        let g = graph();
        let strong = RecordPair::new(rid(0), rid(1)).unwrap();
        let weak = RecordPair::new(rid(2), rid(3)).unwrap();
        assert_eq!(WeightingScheme::Cbs.weight(&g, &strong, g.shared_blocks(&strong)), 3.0);
        assert_eq!(WeightingScheme::Cbs.weight(&g, &weak, g.shared_blocks(&weak)), 1.0);
    }

    #[test]
    fn js_is_normalised_by_block_membership() {
        let g = graph();
        let strong = RecordPair::new(rid(0), rid(1)).unwrap();
        // |B_0| = 3, |B_1| = 3, common = 3 → 3 / (3 + 3 − 3) = 1.
        assert!((WeightingScheme::Js.weight(&g, &strong, g.shared_blocks(&strong)) - 1.0).abs() < 1e-12);
        let cross = RecordPair::new(rid(1), rid(2)).unwrap();
        // |B_1| = 3, |B_2| = 2, common = 1 → 1/4.
        assert!((WeightingScheme::Js.weight(&g, &cross, g.shared_blocks(&cross)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arcs_prefers_small_blocks() {
        let g = graph();
        let strong = RecordPair::new(rid(0), rid(1)).unwrap();
        // Shared blocks b0 (1 pair), b1 (3 pairs), b2 (1 pair) → 1 + 1/3 + 1.
        let w = WeightingScheme::Arcs.weight(&g, &strong, g.shared_blocks(&strong));
        assert!((w - (1.0 + 1.0 / 3.0 + 1.0)).abs() < 1e-12);
        let weak = RecordPair::new(rid(4), rid(5)).unwrap();
        // Only the 4-member block b3 (6 pairs) → 1/6.
        let w = WeightingScheme::Arcs.weight(&g, &weak, g.shared_blocks(&weak));
        assert!((w - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn most_schemes_rank_the_strong_pair_above_the_weak_pair() {
        let g = graph();
        let strong = RecordPair::new(rid(0), rid(1)).unwrap();
        let weak = RecordPair::new(rid(2), rid(3)).unwrap();
        // ECBS is checked separately below: it intentionally discounts
        // records that appear in many blocks.
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Cbs, WeightingScheme::Js, WeightingScheme::Ejs] {
            let ws = scheme.weight(&g, &strong, g.shared_blocks(&strong));
            let ww = scheme.weight(&g, &weak, g.shared_blocks(&weak));
            assert!(ws > ww, "{}: strong {ws} must beat weak {ww}", scheme.name());
            assert!(ws.is_finite() && ww.is_finite());
            assert!(ws >= 0.0 && ww >= 0.0);
        }
        for scheme in WeightingScheme::ALL {
            let w = scheme.weight(&g, &strong, g.shared_blocks(&strong));
            assert!(w.is_finite() && w >= 0.0, "{}", scheme.name());
        }
    }

    #[test]
    fn ecbs_discounts_prolific_records() {
        // Two pairs with identical CBS (one shared block); the pair whose
        // records appear in fewer blocks overall gets the higher ECBS weight.
        let g = BlockingGraph::build(&BlockCollection::from_blocks(vec![
            Block::new("b0", vec![rid(0), rid(1)]),          // isolated pair
            Block::new("b1", vec![rid(2), rid(3)]),          // prolific pair…
            Block::new("b2", vec![rid(2), rid(9)]),          // …record 2 reappears
            Block::new("b3", vec![rid(3), rid(8)]),          // …record 3 reappears
            Block::new("b4", vec![rid(6), rid(7)]),
        ]));
        let isolated = RecordPair::new(rid(0), rid(1)).unwrap();
        let prolific = RecordPair::new(rid(2), rid(3)).unwrap();
        let w_isolated = WeightingScheme::Ecbs.weight(&g, &isolated, g.shared_blocks(&isolated));
        let w_prolific = WeightingScheme::Ecbs.weight(&g, &prolific, g.shared_blocks(&prolific));
        assert!(
            w_isolated > w_prolific,
            "ECBS must favour the pair whose records are in fewer blocks ({w_isolated} vs {w_prolific})"
        );
    }

    #[test]
    fn zero_shared_blocks_means_zero_weight() {
        let g = graph();
        let disconnected = RecordPair::new(rid(0), rid(5)).unwrap();
        for scheme in WeightingScheme::ALL {
            assert_eq!(scheme.weight(&g, &disconnected, &[]), 0.0);
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = WeightingScheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ARCS", "CBS", "ECBS", "JS", "EJS"]);
    }
}
