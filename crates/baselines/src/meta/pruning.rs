//! The four pruning algorithms of meta-blocking: WEP, CEP, WNP and CNP.

use std::collections::{BTreeMap, HashMap};

use sablock_datasets::record::RecordPair;
use sablock_datasets::RecordId;

use super::weighting::WeightingScheme;
use super::BlockingGraph;

/// A pruning algorithm over the weighted blocking graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningAlgorithm {
    /// Weighted Edge Pruning: keep edges whose weight is at least the global
    /// mean edge weight.
    WeightedEdgePruning,
    /// Cardinality Edge Pruning: keep the globally top-K edges, with
    /// K = Σ_b |b| / 2 (half the total block assignments).
    CardinalityEdgePruning,
    /// Weighted Node Pruning: keep an edge if its weight reaches the local
    /// mean of either endpoint's incident edges.
    WeightedNodePruning,
    /// Cardinality Node Pruning: keep an edge if it is among the top-k edges
    /// of either endpoint, with k = Σ_b |b| / |V| (average assignments per
    /// record), at least 1.
    CardinalityNodePruning,
}

impl PruningAlgorithm {
    /// All algorithms, in the order used by the paper's Fig. 12.
    pub const ALL: [PruningAlgorithm; 4] = [
        PruningAlgorithm::WeightedEdgePruning,
        PruningAlgorithm::CardinalityEdgePruning,
        PruningAlgorithm::WeightedNodePruning,
        PruningAlgorithm::CardinalityNodePruning,
    ];

    /// The abbreviation used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::WeightedEdgePruning => "WEP",
            Self::CardinalityEdgePruning => "CEP",
            Self::WeightedNodePruning => "WNP",
            Self::CardinalityNodePruning => "CNP",
        }
    }

    /// Prunes the graph, returning the retained candidate pairs.
    pub fn prune(&self, graph: &BlockingGraph, scheme: WeightingScheme) -> Vec<RecordPair> {
        let weighted = graph.weighted_edges(scheme);
        if weighted.is_empty() {
            return Vec::new();
        }
        match self {
            Self::WeightedEdgePruning => {
                let mean = weighted.iter().map(|(_, w)| w).sum::<f64>() / weighted.len() as f64;
                weighted.into_iter().filter(|(_, w)| *w >= mean).map(|(p, _)| p).collect()
            }
            Self::CardinalityEdgePruning => {
                let budget = (graph.total_assignments() / 2).max(1);
                let mut sorted = weighted;
                sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                sorted.into_iter().take(budget).map(|(p, _)| p).collect()
            }
            Self::WeightedNodePruning => {
                let per_node = incident_edges(&weighted);
                let thresholds: HashMap<RecordId, f64> = per_node
                    .iter()
                    .map(|(node, edges)| {
                        let mean = edges.iter().map(|(_, w)| w).sum::<f64>() / edges.len() as f64;
                        (*node, mean)
                    })
                    .collect();
                weighted
                    .into_iter()
                    .filter(|(pair, weight)| {
                        let keep_first = thresholds.get(&pair.first()).map(|t| *weight >= *t).unwrap_or(false);
                        let keep_second = thresholds.get(&pair.second()).map(|t| *weight >= *t).unwrap_or(false);
                        keep_first || keep_second
                    })
                    .map(|(p, _)| p)
                    .collect()
            }
            Self::CardinalityNodePruning => {
                let k = (graph.total_assignments() / graph.num_records().max(1)).max(1);
                let per_node = incident_edges(&weighted);
                let mut retained: std::collections::HashSet<RecordPair> = std::collections::HashSet::new();
                for (_, mut edges) in per_node {
                    edges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    for (pair, _) in edges.into_iter().take(k) {
                        retained.insert(pair);
                    }
                }
                let mut out: Vec<RecordPair> = retained.into_iter().collect();
                out.sort();
                out
            }
        }
    }
}

/// Groups weighted edges by endpoint.
fn incident_edges(weighted: &[(RecordPair, f64)]) -> BTreeMap<RecordId, Vec<(RecordPair, f64)>> {
    let mut per_node: BTreeMap<RecordId, Vec<(RecordPair, f64)>> = BTreeMap::new();
    for (pair, weight) in weighted {
        per_node.entry(pair.first()).or_default().push((*pair, *weight));
        per_node.entry(pair.second()).or_default().push((*pair, *weight));
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_core::blocking::{Block, BlockCollection};

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    fn graph() -> BlockingGraph {
        BlockingGraph::build(&BlockCollection::from_blocks(vec![
            Block::new("b0", vec![rid(0), rid(1)]),
            Block::new("b1", vec![rid(0), rid(1), rid(2)]),
            Block::new("b2", vec![rid(0), rid(1)]),
            Block::new("b3", vec![rid(2), rid(3), rid(4), rid(5)]),
        ]))
    }

    #[test]
    fn wep_keeps_above_average_edges_only() {
        let g = graph();
        let retained = PruningAlgorithm::WeightedEdgePruning.prune(&g, WeightingScheme::Cbs);
        let strong = RecordPair::new(rid(0), rid(1)).unwrap();
        assert!(retained.contains(&strong));
        assert!(retained.len() < g.num_edges());
    }

    #[test]
    fn cep_respects_its_budget() {
        let g = graph();
        let budget = (g.total_assignments() / 2).max(1);
        let retained = PruningAlgorithm::CardinalityEdgePruning.prune(&g, WeightingScheme::Js);
        assert!(retained.len() <= budget);
        assert!(retained.contains(&RecordPair::new(rid(0), rid(1)).unwrap()));
    }

    #[test]
    fn wnp_keeps_each_nodes_best_edges() {
        let g = graph();
        let retained = PruningAlgorithm::WeightedNodePruning.prune(&g, WeightingScheme::Arcs);
        // Every node keeps at least its best edge, so every record with an
        // edge still appears somewhere.
        let mut covered: std::collections::HashSet<RecordId> = std::collections::HashSet::new();
        for pair in &retained {
            covered.insert(pair.first());
            covered.insert(pair.second());
        }
        assert_eq!(covered.len(), 6);
        assert!(retained.contains(&RecordPair::new(rid(0), rid(1)).unwrap()));
    }

    #[test]
    fn cnp_bounds_the_total_retained_edges() {
        let g = graph();
        let k = (g.total_assignments() / g.num_records().max(1)).max(1);
        let retained = PruningAlgorithm::CardinalityNodePruning.prune(&g, WeightingScheme::Ecbs);
        // Each node contributes at most its top-k edges, so the total number
        // of retained pairs is bounded by k · |V|.
        assert!(retained.len() <= k * g.num_records());
        assert!(!retained.is_empty());
        assert!(retained.contains(&RecordPair::new(rid(0), rid(1)).unwrap()));
    }

    #[test]
    fn pruning_an_empty_graph_returns_nothing() {
        let g = BlockingGraph::build(&BlockCollection::new());
        for pruning in PruningAlgorithm::ALL {
            assert!(pruning.prune(&g, WeightingScheme::Cbs).is_empty());
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = PruningAlgorithm::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["WEP", "CEP", "WNP", "CNP"]);
    }

    #[test]
    fn every_combination_is_deterministic() {
        let g = graph();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningAlgorithm::ALL {
                let a = pruning.prune(&g, scheme);
                let b = pruning.prune(&g, scheme);
                assert_eq!(a, b, "{} + {}", pruning.name(), scheme.name());
            }
        }
    }
}
