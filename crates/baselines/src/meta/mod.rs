//! Meta-blocking (Papadakis et al.), the comparison of Fig. 12.
//!
//! Meta-blocking post-processes a redundancy-positive block collection (one
//! where co-occurring in many blocks signals likely matches, e.g. token
//! blocking): it builds the **blocking graph** whose nodes are records and
//! whose edges connect every co-occurring pair, weights the edges with one of
//! five schemes (ARCS, CBS, ECBS, JS, EJS) and prunes the graph with one of
//! four algorithms (WEP, CEP, WNP, CNP). Every retained edge becomes a
//! candidate pair (a block of two records).

pub mod pruning;
pub mod weighting;

pub use pruning::PruningAlgorithm;
pub use weighting::WeightingScheme;

use std::collections::HashMap;

use sablock_datasets::record::RecordPair;
use sablock_datasets::{Dataset, RecordId};

use sablock_core::blocking::{Block, BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};
use sablock_core::parallel::{default_threads, merge_sorted_runs, parallel_map};

/// How many blocks one chunk of the parallel graph construction enumerates
/// before its `(packed pair, block index)` run is sorted and merged.
const GRAPH_CHUNK_BLOCKS: usize = 256;

/// Enumerates one chunk's `(packed pair, block index)` entries, sorted.
/// Within a chunk the tuple sort orders entries by packed pair key and, for
/// equal pairs, by ascending block index; chunks cover disjoint ascending
/// block-index ranges, so the duplicate-keeping cross-chunk merge preserves
/// both orders.
fn chunk_entries(first_block_index: usize, blocks: &[Block]) -> Vec<(u64, u32)> {
    let mut entries: Vec<(u64, u32)> =
        Vec::with_capacity(blocks.iter().map(|b| b.pair_count() as usize).sum());
    for (offset, block) in blocks.iter().enumerate() {
        let block_index = (first_block_index + offset) as u32;
        for pair in block.pairs() {
            entries.push((pair.pack(), block_index));
        }
    }
    entries.sort_unstable();
    entries
}

/// The blocking graph: co-occurrence statistics extracted from a block
/// collection, sufficient to compute every weighting scheme.
///
/// Edges are stored as sorted packed pair keys with a CSR (compressed sparse
/// row) list of shared block indices, built by the same sorted packed-run
/// merge the core pair enumeration uses — no hashing of pair space, cache-
/// friendly bulk construction, and a deterministic edge order for free.
#[derive(Debug, Clone)]
pub struct BlockingGraph {
    /// Distinct co-occurring pairs as packed keys, strictly ascending.
    edge_keys: Vec<u64>,
    /// CSR offsets into `shared`: edge `i`'s shared blocks are
    /// `shared[edge_offsets[i]..edge_offsets[i + 1]]`.
    edge_offsets: Vec<usize>,
    /// Concatenated shared-block indices, ascending within each edge.
    shared: Vec<u32>,
    /// Number of blocks containing each record (|B_i|).
    blocks_per_record: HashMap<RecordId, usize>,
    /// Pair cardinality ||b|| of every block.
    block_cardinalities: Vec<u64>,
    /// Total number of blocks.
    num_blocks: usize,
    /// Node degrees (number of distinct neighbours).
    degrees: HashMap<RecordId, usize>,
}

impl BlockingGraph {
    /// Builds the graph from a block collection.
    pub fn build(blocks: &BlockCollection) -> Self {
        let mut blocks_per_record: HashMap<RecordId, usize> = HashMap::new();
        let mut block_cardinalities = Vec::with_capacity(blocks.num_blocks());
        for block in blocks.blocks() {
            block_cardinalities.push(block.pair_count().max(1));
            for &member in block.members() {
                *blocks_per_record.entry(member).or_insert(0) += 1;
            }
        }

        // Sorted packed-run construction of the edge list: per-chunk sorted
        // `(pair, block)` runs (in parallel for large collections), combined
        // by the shared duplicate-keeping balanced binary merge.
        let runs: Vec<Vec<(u64, u32)>> = if blocks.num_blocks() > GRAPH_CHUNK_BLOCKS {
            let chunks: Vec<(usize, &[Block])> = blocks
                .blocks()
                .chunks(GRAPH_CHUNK_BLOCKS)
                .enumerate()
                .map(|(i, chunk)| (i * GRAPH_CHUNK_BLOCKS, chunk))
                .collect();
            parallel_map(&chunks, default_threads(), |&(base, chunk)| chunk_entries(base, chunk))
        } else {
            vec![chunk_entries(0, blocks.blocks())]
        };
        let entries = merge_sorted_runs(runs);

        // One grouping pass over the sorted entries builds the CSR arrays.
        let mut edge_keys: Vec<u64> = Vec::new();
        let mut edge_offsets: Vec<usize> = vec![0];
        let mut shared: Vec<u32> = Vec::with_capacity(entries.len());
        for (key, block_index) in entries {
            if edge_keys.last() != Some(&key) {
                edge_keys.push(key);
                edge_offsets.push(shared.len());
            }
            shared.push(block_index);
            *edge_offsets.last_mut().expect("offsets start non-empty") = shared.len();
        }

        let mut degrees: HashMap<RecordId, usize> = HashMap::new();
        for &key in &edge_keys {
            let pair = RecordPair::from_packed(key);
            *degrees.entry(pair.first()).or_insert(0) += 1;
            *degrees.entry(pair.second()).or_insert(0) += 1;
        }
        Self {
            edge_keys,
            edge_offsets,
            shared,
            blocks_per_record,
            block_cardinalities,
            num_blocks: blocks.num_blocks(),
            degrees,
        }
    }

    /// Number of edges (distinct co-occurring pairs).
    pub fn num_edges(&self) -> usize {
        self.edge_keys.len()
    }

    /// Number of blocks behind the graph.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of blocks containing a record.
    pub fn blocks_of(&self, record: RecordId) -> usize {
        self.blocks_per_record.get(&record).copied().unwrap_or(0)
    }

    /// Degree of a record in the graph.
    pub fn degree(&self, record: RecordId) -> usize {
        self.degrees.get(&record).copied().unwrap_or(0)
    }

    /// Total number of record-to-block assignments (Σ_b |b|), used by the
    /// cardinality pruning algorithms to set their budgets.
    pub fn total_assignments(&self) -> usize {
        self.blocks_per_record.values().sum() // sablock-lint: allow(hash-iter-order): integer sum is order-insensitive
    }

    /// Number of distinct records appearing in at least one block.
    pub fn num_records(&self) -> usize {
        self.blocks_per_record.len()
    }

    /// Computes the weight of every edge under a scheme. Edges are emitted
    /// in ascending pair order (the CSR layout is already sorted).
    pub fn weighted_edges(&self, scheme: WeightingScheme) -> Vec<(RecordPair, f64)> {
        self.edge_keys
            .iter()
            .enumerate()
            .map(|(i, &key)| {
                let pair = RecordPair::from_packed(key);
                let shared = &self.shared[self.edge_offsets[i]..self.edge_offsets[i + 1]];
                let weight = scheme.weight(self, &pair, shared);
                (pair, weight)
            })
            .collect()
    }

    /// The shared blocks of an edge (empty if the pair never co-occurs).
    pub fn shared_blocks(&self, pair: &RecordPair) -> &[u32] {
        match self.edge_keys.binary_search(&pair.pack()) {
            Ok(i) => &self.shared[self.edge_offsets[i]..self.edge_offsets[i + 1]],
            Err(_) => &[],
        }
    }

    /// Pair cardinality of a block.
    pub fn block_cardinality(&self, block_index: usize) -> u64 {
        self.block_cardinalities.get(block_index).copied().unwrap_or(1)
    }
}

/// Meta-blocking as a [`Blocker`]: runs an inner (redundancy-positive)
/// blocker, builds the blocking graph, weights and prunes it, and emits each
/// retained edge as a block of two records.
pub struct MetaBlocking<B> {
    inner: B,
    scheme: WeightingScheme,
    pruning: PruningAlgorithm,
}

impl<B: Blocker> MetaBlocking<B> {
    /// Wraps an inner blocker with the given weighting scheme and pruning
    /// algorithm.
    pub fn new(inner: B, scheme: WeightingScheme, pruning: PruningAlgorithm) -> Self {
        Self { inner, scheme, pruning }
    }

    /// Applies weighting and pruning to an existing block collection (useful
    /// when the same input blocks are re-pruned under many configurations, as
    /// in Fig. 12).
    pub fn prune_collection(
        blocks: &BlockCollection,
        scheme: WeightingScheme,
        pruning: PruningAlgorithm,
    ) -> Result<BlockCollection> {
        if blocks.is_empty() {
            return Ok(BlockCollection::new());
        }
        let graph = BlockingGraph::build(blocks);
        if graph.num_edges() == 0 {
            return Err(CoreError::Config("the input block collection induces no edges".into()));
        }
        let retained = pruning.prune(&graph, scheme);
        let result = retained
            .into_iter()
            .enumerate()
            .map(|(i, pair)| Block::new(format!("meta{i}"), vec![pair.first(), pair.second()]))
            .collect();
        Ok(BlockCollection::from_blocks(result))
    }
}

impl<B: Blocker> Blocker for MetaBlocking<B> {
    fn name(&self) -> String {
        format!("Meta({}+{} over {})", self.pruning.name(), self.scheme.name(), self.inner.name())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        let input = self.inner.block(dataset)?;
        if input.is_empty() {
            return Ok(BlockCollection::new());
        }
        Self::prune_collection(&input, self.scheme, self.pruning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::BlockingKey;
    use crate::standard::TokenBlocking;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    fn sample_blocks() -> BlockCollection {
        // Records 0 and 1 co-occur in three blocks (strong signal); records
        // 2 and 3 co-occur in one big generic block only (weak signal).
        BlockCollection::from_blocks(vec![
            Block::new("b0", vec![rid(0), rid(1)]),
            Block::new("b1", vec![rid(0), rid(1), rid(2)]),
            Block::new("b2", vec![rid(0), rid(1)]),
            Block::new("b3", vec![rid(2), rid(3), rid(4), rid(5)]),
        ])
    }

    #[test]
    fn graph_statistics() {
        let graph = BlockingGraph::build(&sample_blocks());
        assert_eq!(graph.num_blocks(), 4);
        assert_eq!(graph.num_records(), 6);
        // Edges: (0,1), (0,2), (1,2) from b0-b2; (2,3),(2,4),(2,5),(3,4),(3,5),(4,5) from b3.
        assert_eq!(graph.num_edges(), 9);
        assert_eq!(graph.blocks_of(rid(0)), 3);
        assert_eq!(graph.blocks_of(rid(3)), 1);
        assert_eq!(graph.blocks_of(rid(9)), 0);
        assert_eq!(graph.degree(rid(2)), 5);
        assert_eq!(graph.degree(rid(9)), 0);
        assert_eq!(graph.total_assignments(), 2 + 3 + 2 + 4);
        let pair = RecordPair::new(rid(0), rid(1)).unwrap();
        assert_eq!(graph.shared_blocks(&pair).len(), 3);
        assert_eq!(graph.block_cardinality(3), 6);
        assert_eq!(graph.block_cardinality(99), 1);
    }

    #[test]
    fn strong_edges_survive_weight_pruning() {
        let blocks = sample_blocks();
        // ECBS is excluded: it deliberately discounts records that appear in
        // many blocks, which in this tiny graph is exactly the strong pair.
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Cbs, WeightingScheme::Js, WeightingScheme::Ejs] {
            let pruned =
                MetaBlocking::<TokenBlocking>::prune_collection(&blocks, scheme, PruningAlgorithm::WeightedEdgePruning).unwrap();
            assert!(
                pruned.theta(rid(0), rid(1)),
                "{}: the thrice-co-occurring pair must survive WEP",
                scheme.name()
            );
        }
    }

    #[test]
    fn pruning_reduces_pairs_without_emptying_the_graph() {
        let blocks = sample_blocks();
        let original = blocks.num_distinct_pairs();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningAlgorithm::ALL {
                let pruned = MetaBlocking::<TokenBlocking>::prune_collection(&blocks, scheme, pruning).unwrap();
                assert!(pruned.num_distinct_pairs() <= original, "{} {}", scheme.name(), pruning.name());
                assert!(pruned.num_distinct_pairs() > 0, "{} {}", scheme.name(), pruning.name());
            }
        }
    }

    #[test]
    fn end_to_end_over_token_blocking() {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        let rows = [
            ("qing", "wang", 0),
            ("wang", "qing", 0),
            ("qing", "chen", 1),
            ("huizhi", "liang", 2),
            ("huizhi", "liang", 2),
            ("mingyuan", "cui", 3),
        ];
        for (f, l, e) in rows {
            b.push_values(vec![Some(f.into()), Some(l.into())], EntityId(e)).unwrap();
        }
        let ds = b.build().unwrap();
        let meta = MetaBlocking::new(
            TokenBlocking::new(BlockingKey::ncvoter()),
            WeightingScheme::Cbs,
            PruningAlgorithm::WeightedNodePruning,
        );
        assert!(meta.name().contains("WNP"));
        let blocks = meta.block(&ds).unwrap();
        // The transposed-name duplicate shares two tokens; the single-token
        // overlap with "qing chen" is comparatively weak.
        assert!(blocks.theta(rid(0), rid(1)));
        assert!(blocks.theta(rid(3), rid(4)));
        // Every emitted block is a single pair.
        assert!(blocks.blocks().iter().all(|b| b.len() == 2));
    }

    #[test]
    fn empty_inputs_are_handled() {
        let empty = BlockCollection::new();
        let pruned = MetaBlocking::<TokenBlocking>::prune_collection(&empty, WeightingScheme::Js, PruningAlgorithm::WeightedEdgePruning);
        assert!(pruned.unwrap().is_empty());
    }
}
