//! Canopy clustering blocking (CaTh and CaNN in Table 3).
//!
//! McCallum, Nigam and Ungar's canopy clustering uses a *cheap* similarity
//! (TF-IDF cosine or Jaccard over tokens/q-grams) and two thresholds: pick a
//! random seed record, put every record within the *loose* threshold into its
//! canopy (block), and remove every record within the *tight* threshold from
//! the pool of future seeds. The nearest-neighbour variant replaces the two
//! thresholds with two neighbour counts (`n1` records join the canopy, the
//! `n2` closest are removed from the pool).
//!
//! Canopy clustering computes similarities between the seed and every
//! remaining record, so it retains an O(n²)-flavoured cost — the paper lists
//! it among the slower baselines. On large datasets both the per-record
//! representation build (q-gram sets / TF-IDF vectors, routed through
//! `build_index_chunked`) and the per-centre similarity scan
//! (`parallel_map`) run across worker threads; the canopy-forming sweep
//! itself stays sequential, so the blocks are byte-identical for every
//! worker count (pinned in `tests/determinism.rs`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sablock_datasets::{Dataset, Record};
use sablock_textual::hashing::StableHashSet;
use sablock_textual::qgrams::qgram_set;
use sablock_textual::setsim::jaccard;
use sablock_textual::tfidf::{dot, SparseVector, TfIdfModel};

use sablock_core::blocking::{Block, BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};
use sablock_core::parallel::{parallel_map, resolve_threads};

use crate::key::BlockingKey;
use crate::{build_index_chunked, record_id_of_index};

/// The cheap similarity used to form canopies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CanopySimilarity {
    /// Jaccard over character q-grams of the key value.
    Jaccard {
        /// The q-gram size.
        q: usize,
    },
    /// TF-IDF cosine over the key value's word tokens.
    TfIdfCosine,
}

impl CanopySimilarity {
    fn name(&self) -> String {
        match self {
            Self::Jaccard { q } => format!("jaccard(q={q})"),
            Self::TfIdfCosine => "tfidf-cosine".to_string(),
        }
    }
}

/// Pre-computed per-record representations for the chosen similarity.
enum Repr {
    Jaccard(Vec<StableHashSet<String>>),
    TfIdf(Vec<SparseVector>),
}

impl Repr {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        match self {
            Repr::Jaccard(sets) => jaccard(&sets[a], &sets[b]),
            Repr::TfIdf(vectors) => dot(&vectors[a], &vectors[b]).clamp(0.0, 1.0),
        }
    }
}

/// Extracts every record's blocking-key value and its similarity
/// representation in one pass, indexing record chunks in parallel through
/// [`build_index_chunked`] (per-chunk vectors append in ascending chunk
/// order, so the result is byte-identical to a sequential pass for any
/// worker count). The TF-IDF model's document frequencies are a global
/// statistic, so that variant fits the model sequentially after the value
/// pass and chunks only the per-record vectorisation ([`parallel_map`]).
fn prepare_repr(
    similarity: CanopySimilarity,
    dataset: &Dataset,
    key: &BlockingKey,
    threads: Option<usize>,
) -> (Vec<String>, Repr) {
    match similarity {
        CanopySimilarity::Jaccard { q } => {
            let q = q.max(1);
            let pairs: Vec<(String, StableHashSet<String>)> = build_index_chunked(
                dataset.records(),
                threads,
                |records: &[Record]| {
                    records
                        .iter()
                        .map(|r| {
                            let value = key.value(r);
                            let set = qgram_set(&value, q);
                            (value, set)
                        })
                        .collect::<Vec<_>>()
                },
                |merged, partial| merged.extend(partial),
            );
            let mut values = Vec::with_capacity(pairs.len());
            let mut sets = Vec::with_capacity(pairs.len());
            for (value, set) in pairs {
                values.push(value);
                sets.push(set);
            }
            (values, Repr::Jaccard(sets))
        }
        CanopySimilarity::TfIdfCosine => {
            let values: Vec<String> = build_index_chunked(
                dataset.records(),
                threads,
                |records: &[Record]| records.iter().map(|r| key.value(r)).collect::<Vec<String>>(),
                |merged, partial| merged.extend(partial),
            );
            let model = TfIdfModel::fit(values.iter());
            let resolved = resolve_threads(threads, values.len());
            let vectors = parallel_map(&values, resolved, |v| model.vectorize(v));
            (values, Repr::TfIdf(vectors))
        }
    }
}

/// The similarities of one canopy centre against every keyed record, in
/// record order ([`parallel_map`] across index chunks; empty-keyed records
/// and the centre itself score −1 so they never pass a threshold). Keeping
/// the scan order fixed keeps canopy formation thread-count invariant.
fn centre_similarities(repr: &Repr, values: &[String], centre: usize, threads: usize) -> Vec<f64> {
    let ids: Vec<usize> = (0..values.len()).collect();
    parallel_map(&ids, threads, |&other| {
        if other == centre || values[other].is_empty() {
            -1.0
        } else {
            repr.similarity(centre, other)
        }
    })
}

/// Threshold-based canopy clustering (CaTh).
#[derive(Debug, Clone)]
pub struct CanopyThreshold {
    key: BlockingKey,
    similarity: CanopySimilarity,
    loose: f64,
    tight: f64,
    seed: u64,
    threads: Option<usize>,
}

impl CanopyThreshold {
    /// Creates the blocker. The paper sweeps the thresholds over
    /// {0.9/0.8, 0.8/0.7} with Jaccard and TF-IDF cosine similarities.
    /// `tight` must be at least `loose` (the tight threshold removes records
    /// from the seed pool, so it is the *higher* similarity).
    pub fn new(key: BlockingKey, similarity: CanopySimilarity, tight: f64, loose: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&tight) || !(0.0..=1.0).contains(&loose) {
            return Err(CoreError::Config("canopy thresholds must be in [0, 1]".into()));
        }
        if tight < loose {
            return Err(CoreError::Config(format!(
                "the tight threshold ({tight}) must be >= the loose threshold ({loose})"
            )));
        }
        Ok(Self {
            key,
            similarity,
            loose,
            tight,
            seed: 0xCA11,
            threads: None,
        })
    }

    /// Sets the seed used to pick canopy centres.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count for the representation build and the
    /// per-centre similarity scans (clamped to at least 1). Canopy output is
    /// identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for CanopyThreshold {
    fn name(&self) -> String {
        format!(
            "CaTh({},{}/{},{})",
            self.similarity.name(),
            self.tight,
            self.loose,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let (values, repr) = prepare_repr(self.similarity, dataset, &self.key, self.threads);
        let threads = resolve_threads(self.threads, dataset.len());

        // Candidate pool: records with a non-empty key, in random order.
        let mut pool: Vec<usize> = (0..values.len()).filter(|&i| !values[i].is_empty()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        pool.shuffle(&mut rng);
        let mut in_pool = vec![false; values.len()];
        for &i in &pool {
            in_pool[i] = true;
        }

        let mut blocks = Vec::new();
        let mut canopy_id = 0usize;
        while let Some(centre) = pool.pop() {
            if !in_pool[centre] {
                continue;
            }
            in_pool[centre] = false;
            // The O(n) similarity scan runs across workers; membership and
            // tight claiming stay sequential in record order, so the canopy
            // is identical for every worker count.
            let sims = centre_similarities(&repr, &values, centre, threads);
            let mut members = vec![record_id_of_index(centre)];
            for (other, &sim) in sims.iter().enumerate() {
                // A record may appear in several canopies (loose membership),
                // but only records still in the pool can be claimed tightly.
                if sim >= self.loose {
                    members.push(record_id_of_index(other));
                    if sim >= self.tight && in_pool[other] {
                        in_pool[other] = false;
                    }
                }
            }
            pool.retain(|&i| in_pool[i]);
            if members.len() >= 2 {
                blocks.push(Block::new(format!("canopy{canopy_id}"), members));
                canopy_id += 1;
            }
        }
        Ok(BlockCollection::from_blocks(blocks))
    }
}

/// Nearest-neighbour canopy clustering (CaNN).
#[derive(Debug, Clone)]
pub struct CanopyNearestNeighbour {
    key: BlockingKey,
    similarity: CanopySimilarity,
    include_nearest: usize,
    remove_nearest: usize,
    seed: u64,
    threads: Option<usize>,
}

impl CanopyNearestNeighbour {
    /// Creates the blocker. The paper sweeps the neighbour counts over
    /// {5/10, 10/20} (remove/include).
    pub fn new(key: BlockingKey, similarity: CanopySimilarity, remove_nearest: usize, include_nearest: usize) -> Result<Self> {
        if remove_nearest == 0 || include_nearest == 0 {
            return Err(CoreError::Config("neighbour counts must be > 0".into()));
        }
        if remove_nearest > include_nearest {
            return Err(CoreError::Config(format!(
                "remove_nearest ({remove_nearest}) must be <= include_nearest ({include_nearest})"
            )));
        }
        Ok(Self {
            key,
            similarity,
            include_nearest,
            remove_nearest,
            seed: 0xCA22,
            threads: None,
        })
    }

    /// Sets the seed used to pick canopy centres.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count for the representation build and the
    /// per-centre similarity scans (clamped to at least 1). Canopy output is
    /// identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for CanopyNearestNeighbour {
    fn name(&self) -> String {
        format!(
            "CaNN({},{}/{},{})",
            self.similarity.name(),
            self.remove_nearest,
            self.include_nearest,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let (values, repr) = prepare_repr(self.similarity, dataset, &self.key, self.threads);
        let threads = resolve_threads(self.threads, dataset.len());

        let mut pool: Vec<usize> = (0..values.len()).filter(|&i| !values[i].is_empty()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        pool.shuffle(&mut rng);
        let mut in_pool = vec![false; values.len()];
        for &i in &pool {
            in_pool[i] = true;
        }

        let mut blocks = Vec::new();
        let mut canopy_id = 0usize;
        while let Some(centre) = pool.pop() {
            if !in_pool[centre] {
                continue;
            }
            in_pool[centre] = false;
            // Similarities to every other keyed record (scanned across
            // workers in record order), most similar first; the stable sort
            // keeps ties in record order, so the ranking is thread-count
            // invariant.
            let sims = centre_similarities(&repr, &values, centre, threads);
            let mut neighbours: Vec<(usize, f64)> = sims
                .into_iter()
                .enumerate()
                .filter(|&(other, _)| other != centre && !values[other].is_empty())
                .collect();
            neighbours.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

            let mut members = vec![record_id_of_index(centre)];
            for (rank, (other, _)) in neighbours.iter().enumerate() {
                if rank < self.include_nearest {
                    members.push(record_id_of_index(*other));
                }
                if rank < self.remove_nearest && in_pool[*other] {
                    in_pool[*other] = false;
                }
                if rank >= self.include_nearest {
                    break;
                }
            }
            pool.retain(|&i| in_pool[i]);
            if members.len() >= 2 {
                blocks.push(Block::new(format!("canopy-nn{canopy_id}"), members));
                canopy_id += 1;
            }
        }
        Ok(BlockCollection::from_blocks(blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::RecordId;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn key() -> BlockingKey {
        BlockingKey::exact(["title"]).unwrap()
    }

    fn papers() -> Dataset {
        let schema = Schema::shared(["title"]).unwrap();
        let mut b = DatasetBuilder::new("papers", schema);
        let rows = [
            ("the cascade correlation learning architecture", 0),
            ("cascade correlation learning architecture", 0),
            ("the cascade corelation learning architecture", 0),
            ("efficient clustering of high dimensional data sets", 1),
            ("efficient clustering of high dimensional data", 1),
            ("a theory for record linkage", 2),
            ("", 3),
        ];
        for (t, e) in rows {
            let title = if t.is_empty() { None } else { Some(t.to_string()) };
            b.push_values(vec![title], EntityId(e)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn threshold_validation() {
        assert!(CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 0.7, 0.8).is_err());
        assert!(CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 1.2, 0.8).is_err());
        assert!(CanopyNearestNeighbour::new(key(), CanopySimilarity::TfIdfCosine, 0, 5).is_err());
        assert!(CanopyNearestNeighbour::new(key(), CanopySimilarity::TfIdfCosine, 10, 5).is_err());
        let ok = CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 0.9, 0.8).unwrap();
        assert!(ok.name().contains("CaTh"));
        let ok = CanopyNearestNeighbour::new(key(), CanopySimilarity::TfIdfCosine, 5, 10).unwrap();
        assert!(ok.name().contains("CaNN"));
    }

    #[test]
    fn threshold_canopies_group_similar_titles() {
        let ds = papers();
        for similarity in [CanopySimilarity::Jaccard { q: 2 }, CanopySimilarity::TfIdfCosine] {
            let blocks = CanopyThreshold::new(key(), similarity, 0.8, 0.5).unwrap().block(&ds).unwrap();
            assert!(blocks.theta(RecordId(0), RecordId(1)), "{similarity:?}: cascade papers together");
            assert!(blocks.theta(RecordId(3), RecordId(4)), "{similarity:?}: clustering papers together");
            assert!(
                !blocks.theta(RecordId(0), RecordId(5)),
                "{similarity:?}: unrelated titles must not share a canopy"
            );
        }
    }

    #[test]
    fn canopies_are_deterministic_given_a_seed() {
        let ds = papers();
        let blocker = CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 0.9, 0.4).unwrap().with_seed(5);
        let a = blocker.block(&ds).unwrap().distinct_pairs();
        let b = blocker.block(&ds).unwrap().distinct_pairs();
        assert_eq!(a, b);
    }

    #[test]
    fn looser_thresholds_capture_more_pairs() {
        let ds = papers();
        let strict = CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 0.95, 0.85).unwrap().block(&ds).unwrap();
        let loose = CanopyThreshold::new(key(), CanopySimilarity::Jaccard { q: 2 }, 0.8, 0.3).unwrap().block(&ds).unwrap();
        assert!(loose.num_distinct_pairs() >= strict.num_distinct_pairs());
    }

    #[test]
    fn nearest_neighbour_canopies_cover_all_clusters() {
        let ds = papers();
        let blocks = CanopyNearestNeighbour::new(key(), CanopySimilarity::Jaccard { q: 2 }, 1, 2).unwrap().block(&ds).unwrap();
        // With include_nearest = 2 each canopy holds its centre plus its two
        // nearest records, so the cascade trio is recovered across canopies.
        assert!(blocks.theta(RecordId(0), RecordId(1)) || blocks.theta(RecordId(0), RecordId(2)));
        assert!(blocks.theta(RecordId(3), RecordId(4)));
        // Empty records never join canopies.
        assert!(blocks.distinct_pairs().iter().all(|p| p.second().0 != 6));
    }

    #[test]
    fn thread_count_does_not_change_canopies() {
        let ds = papers();
        for similarity in [CanopySimilarity::Jaccard { q: 2 }, CanopySimilarity::TfIdfCosine] {
            let single = CanopyThreshold::new(key(), similarity, 0.8, 0.4).unwrap().with_threads(1).block(&ds).unwrap();
            let quad = CanopyThreshold::new(key(), similarity, 0.8, 0.4).unwrap().with_threads(4).block(&ds).unwrap();
            assert_eq!(single.blocks(), quad.blocks(), "{similarity:?}");
            let single = CanopyNearestNeighbour::new(key(), similarity, 1, 2).unwrap().with_threads(1).block(&ds).unwrap();
            let quad = CanopyNearestNeighbour::new(key(), similarity, 1, 2).unwrap().with_threads(4).block(&ds).unwrap();
            assert_eq!(single.blocks(), quad.blocks(), "{similarity:?}");
        }
    }

    #[test]
    fn unknown_key_attribute_errors() {
        let ds = papers();
        assert!(CanopyThreshold::new(BlockingKey::ncvoter(), CanopySimilarity::TfIdfCosine, 0.9, 0.8)
            .unwrap()
            .block(&ds)
            .is_err());
        assert!(CanopyNearestNeighbour::new(BlockingKey::ncvoter(), CanopySimilarity::TfIdfCosine, 5, 10)
            .unwrap()
            .block(&ds)
            .is_err());
    }
}
