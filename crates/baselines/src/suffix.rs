//! Suffix-array blocking: SuA, SuAS and RSuA in Table 3.
//!
//! Aizawa and Oyama's suffix-array blocking indexes each record under every
//! suffix of its (compact) blocking-key value that is at least
//! `min_suffix_len` characters long; suffix groups larger than
//! `max_block_size` are discarded as too generic. The *all-substrings*
//! variant (SuAS) indexes under every substring instead of every suffix, and
//! the *robust* variant (RSuA, de Vries et al.) additionally merges adjacent
//! suffixes in the sorted suffix array when they are highly similar, which
//! recovers matches lost to typos inside the suffix itself.

use std::collections::{BTreeMap, BTreeSet};

use sablock_datasets::{Dataset, Record, RecordId};
use sablock_textual::similarity::{SimilarityFunction, StringSimilarity};

use sablock_core::blocking::{Block, BlockCollection, Blocker};
use sablock_core::error::{CoreError, Result};

use crate::build_index_chunked;
use crate::key::BlockingKey;

fn validate_lengths(min_suffix_len: usize, max_block_size: usize) -> Result<()> {
    if min_suffix_len == 0 {
        return Err(CoreError::Config("min_suffix_len must be > 0".into()));
    }
    if max_block_size < 2 {
        return Err(CoreError::Config("max_block_size must be at least 2".into()));
    }
    Ok(())
}

/// The suffixes of `value` that are at least `min_len` characters long,
/// including the full value itself.
fn suffixes(value: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = value.chars().collect();
    if chars.len() < min_len {
        return Vec::new();
    }
    (0..=chars.len() - min_len).map(|start| chars[start..].iter().collect()).collect()
}

/// All substrings of `value` with length in `[min_len, value.len()]`,
/// deduplicated. Bounded by `cap` to keep very long keys tractable.
fn substrings(value: &str, min_len: usize, cap: usize) -> Vec<String> {
    let chars: Vec<char> = value.chars().collect();
    if chars.len() < min_len {
        return Vec::new();
    }
    let mut out: BTreeSet<String> = BTreeSet::new();
    'outer: for len in min_len..=chars.len() {
        for start in 0..=chars.len() - len {
            out.insert(chars[start..start + len].iter().collect());
            if out.len() >= cap {
                break 'outer;
            }
        }
    }
    out.into_iter().collect()
}

/// Builds a suffix (or substring) inverted index: key string → record ids.
///
/// Suffix generation is independent per record, so construction goes through
/// [`build_index_chunked`]: record chunks are indexed in parallel and the
/// per-chunk indexes merged in ascending chunk order, which preserves the
/// exact posting-list order (record order) of a sequential build — the index
/// is byte-identical for every worker count.
fn build_index(
    dataset: &Dataset,
    key: &BlockingKey,
    min_len: usize,
    all_substrings: bool,
    substring_cap: usize,
    threads: Option<usize>,
) -> BTreeMap<String, Vec<RecordId>> {
    let index_chunk = |records: &[Record]| {
        let mut index: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for record in records {
            let value = key.compact_value(record);
            if value.is_empty() {
                continue;
            }
            let keys = if all_substrings {
                substrings(&value, min_len, substring_cap)
            } else {
                suffixes(&value, min_len)
            };
            for k in keys {
                index.entry(k).or_default().push(record.id());
            }
        }
        index
    };
    build_index_chunked(dataset.records(), threads, index_chunk, |index, partial| {
        for (k, mut ids) in partial {
            index.entry(k).or_default().append(&mut ids);
        }
    })
}

/// Suffix-array blocking (SuA).
#[derive(Debug, Clone)]
pub struct SuffixArrayBlocking {
    key: BlockingKey,
    min_suffix_len: usize,
    max_block_size: usize,
    threads: Option<usize>,
}

impl SuffixArrayBlocking {
    /// Creates the blocker. The paper sweeps `min_suffix_len ∈ {3, 5}` and
    /// `max_block_size ∈ {5, 10, 20}`.
    pub fn new(key: BlockingKey, min_suffix_len: usize, max_block_size: usize) -> Result<Self> {
        validate_lengths(min_suffix_len, max_block_size)?;
        Ok(Self {
            key,
            min_suffix_len,
            max_block_size,
            threads: None,
        })
    }

    /// Fixes the worker count of the index construction (by default large
    /// datasets parallelise automatically; blocks are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for SuffixArrayBlocking {
    fn name(&self) -> String {
        format!("SuA(min={},max={},{})", self.min_suffix_len, self.max_block_size, self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let index = build_index(dataset, &self.key, self.min_suffix_len, false, usize::MAX, self.threads);
        let blocks = index
            .into_iter()
            .filter(|(_, members)| members.len() >= 2 && members.len() <= self.max_block_size)
            .map(|(suffix, members)| Block::new(suffix, members))
            .collect();
        Ok(BlockCollection::from_blocks(blocks))
    }
}

/// Suffix-array blocking using all substrings (SuAS).
#[derive(Debug, Clone)]
pub struct AllSubstringsBlocking {
    key: BlockingKey,
    min_suffix_len: usize,
    max_block_size: usize,
    substring_cap: usize,
    threads: Option<usize>,
}

impl AllSubstringsBlocking {
    /// Creates the blocker with the same parameters as [`SuffixArrayBlocking`].
    pub fn new(key: BlockingKey, min_suffix_len: usize, max_block_size: usize) -> Result<Self> {
        validate_lengths(min_suffix_len, max_block_size)?;
        Ok(Self {
            key,
            min_suffix_len,
            max_block_size,
            substring_cap: 512,
            threads: None,
        })
    }

    /// Caps the number of substrings generated per record (default 512).
    pub fn with_substring_cap(mut self, cap: usize) -> Self {
        self.substring_cap = cap.max(1);
        self
    }

    /// Fixes the worker count of the index construction (by default large
    /// datasets parallelise automatically; blocks are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for AllSubstringsBlocking {
    fn name(&self) -> String {
        format!("SuAS(min={},max={},{})", self.min_suffix_len, self.max_block_size, self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let index = build_index(dataset, &self.key, self.min_suffix_len, true, self.substring_cap, self.threads);
        let blocks = index
            .into_iter()
            .filter(|(_, members)| members.len() >= 2 && members.len() <= self.max_block_size)
            .map(|(substring, members)| Block::new(substring, members))
            .collect();
        Ok(BlockCollection::from_blocks(blocks))
    }
}

/// Robust suffix-array blocking (RSuA).
#[derive(Debug, Clone)]
pub struct RobustSuffixArrayBlocking {
    key: BlockingKey,
    min_suffix_len: usize,
    max_block_size: usize,
    similarity: SimilarityFunction,
    threshold: f64,
    threads: Option<usize>,
}

impl RobustSuffixArrayBlocking {
    /// Creates the blocker. The paper sweeps the string similarity over
    /// {Jaro-Winkler, bigram, edit distance, LCS} and the threshold over
    /// {0.8, 0.9}, on top of the SuA length parameters.
    pub fn new(
        key: BlockingKey,
        min_suffix_len: usize,
        max_block_size: usize,
        similarity: SimilarityFunction,
        threshold: f64,
    ) -> Result<Self> {
        validate_lengths(min_suffix_len, max_block_size)?;
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CoreError::Config("threshold must be in [0, 1]".into()));
        }
        Ok(Self {
            key,
            min_suffix_len,
            max_block_size,
            similarity,
            threshold,
            threads: None,
        })
    }

    /// Fixes the worker count of the index construction (by default large
    /// datasets parallelise automatically; blocks are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

impl Blocker for RobustSuffixArrayBlocking {
    fn name(&self) -> String {
        format!(
            "RSuA(min={},max={},{},t={},{})",
            self.min_suffix_len,
            self.max_block_size,
            self.similarity.name(),
            self.threshold,
            self.key.describe()
        )
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        // BTreeMap keeps the suffix array sorted, which is what "adjacent
        // suffixes" refers to.
        let index = build_index(dataset, &self.key, self.min_suffix_len, false, usize::MAX, self.threads);
        let entries: Vec<(String, Vec<RecordId>)> = index.into_iter().collect();

        let mut blocks: Vec<Block> = Vec::new();
        let mut current_suffix: Option<String> = None;
        let mut current_members: Vec<RecordId> = Vec::new();
        let mut block_counter = 0usize;

        let flush = |members: &mut Vec<RecordId>, counter: &mut usize, blocks: &mut Vec<Block>| {
            if members.len() >= 2 && members.len() <= self.max_block_size {
                blocks.push(Block::new(format!("rsua{counter}"), std::mem::take(members)));
                *counter += 1;
            } else {
                members.clear();
            }
        };

        for (suffix, members) in entries {
            // Oversized suffix groups are discarded outright, as in SuA.
            if members.len() > self.max_block_size {
                flush(&mut current_members, &mut block_counter, &mut blocks);
                current_suffix = None;
                continue;
            }
            let merge = match &current_suffix {
                Some(prev) => {
                    self.similarity.similarity(prev, &suffix) >= self.threshold
                        && current_members.len() + members.len() <= self.max_block_size
                }
                None => false,
            };
            if merge {
                current_members.extend(members);
            } else {
                flush(&mut current_members, &mut block_counter, &mut blocks);
                current_members = members;
            }
            current_suffix = Some(suffix);
        }
        flush(&mut current_members, &mut block_counter, &mut blocks);
        Ok(BlockCollection::from_blocks(blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn key() -> BlockingKey {
        BlockingKey::exact(["last_name", "first_name"]).unwrap()
    }

    fn people(rows: &[(&str, &str, u32)]) -> Dataset {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        for (f, l, e) in rows {
            b.push_values(vec![Some((*f).into()), Some((*l).into())], EntityId(*e)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn suffix_and_substring_generation() {
        assert_eq!(suffixes("wang", 2), vec!["wang", "ang", "ng"]);
        assert_eq!(suffixes("wang", 5), Vec::<String>::new());
        let subs = substrings("wang", 3, 100);
        assert!(subs.contains(&"wan".to_string()));
        assert!(subs.contains(&"ang".to_string()));
        assert!(subs.contains(&"wang".to_string()));
        assert_eq!(subs.len(), 3);
        assert!(substrings("verylongkey", 2, 5).len() <= 5);
    }

    #[test]
    fn parameter_validation() {
        assert!(SuffixArrayBlocking::new(key(), 0, 10).is_err());
        assert!(SuffixArrayBlocking::new(key(), 3, 1).is_err());
        assert!(AllSubstringsBlocking::new(key(), 0, 10).is_err());
        assert!(RobustSuffixArrayBlocking::new(key(), 3, 10, SimilarityFunction::JaroWinkler, 1.5).is_err());
        assert!(SuffixArrayBlocking::new(key(), 3, 10).unwrap().name().contains("SuA"));
        assert!(AllSubstringsBlocking::new(key(), 3, 10).unwrap().name().contains("SuAS"));
        assert!(RobustSuffixArrayBlocking::new(key(), 3, 10, SimilarityFunction::QGram(2), 0.8)
            .unwrap()
            .name()
            .contains("RSuA"));
    }

    #[test]
    fn shared_suffixes_create_blocks() {
        // "wangqing" and "wangqin g" → compact "wangqing" vs a prefix-typo
        // variant "vangqing": they share the suffix "angqing".
        let ds = people(&[("qing", "wang", 0), ("qing", "vang", 0), ("li", "chen", 1)]);
        let blocks = SuffixArrayBlocking::new(key(), 3, 10).unwrap().block(&ds).unwrap();
        assert!(blocks.theta(RecordId(0), RecordId(1)), "suffix 'angqing' is shared");
        assert!(!blocks.theta(RecordId(0), RecordId(2)));
    }

    #[test]
    fn oversized_suffix_groups_are_discarded() {
        // Ten records sharing the suffix "smith": with max_block_size 5 the
        // "smith" suffix group is dropped, so records only pair through
        // longer, rarer suffixes.
        let rows: Vec<(String, String, u32)> = (0..10).map(|i| (format!("p{i}"), "smith".to_string(), i as u32)).collect();
        let rows_ref: Vec<(&str, &str, u32)> = rows.iter().map(|(f, l, e)| (f.as_str(), l.as_str(), *e)).collect();
        let ds = people(&rows_ref);
        let blocks = SuffixArrayBlocking::new(BlockingKey::exact(["last_name"]).unwrap(), 3, 5).unwrap().block(&ds).unwrap();
        assert_eq!(blocks.num_distinct_pairs(), 0, "all suffix groups exceed the cap");
    }

    #[test]
    fn all_substrings_variant_is_more_permissive_than_suffixes() {
        // A typo at the *end* of the key defeats suffix blocking but not
        // substring blocking: "wangqing" vs "wangqinh" share "wangqin".
        let ds = people(&[("qing", "wang", 0), ("qinh", "wang", 0), ("zz", "yy", 1)]);
        let sua = SuffixArrayBlocking::new(key(), 4, 10).unwrap().block(&ds).unwrap();
        let suas = AllSubstringsBlocking::new(key(), 4, 10).unwrap().block(&ds).unwrap();
        assert!(!sua.theta(RecordId(0), RecordId(1)), "no shared suffix of length >= 4");
        assert!(suas.theta(RecordId(0), RecordId(1)), "shared substring 'wangqin'");
        assert!(suas.num_distinct_pairs() >= sua.num_distinct_pairs());
    }

    #[test]
    fn robust_variant_merges_similar_adjacent_suffixes() {
        // "andersonanna" vs "andersenannie": no suffix is shared (the key
        // endings differ), but the two full-key suffixes are adjacent in
        // sorted order and highly similar, so RSuA merges them where SuA
        // keeps them apart.
        let ds = people(&[("anna", "anderson", 0), ("annie", "andersen", 0), ("bob", "zhou", 1)]);
        let sua = SuffixArrayBlocking::new(key(), 5, 10).unwrap().block(&ds).unwrap();
        let rsua = RobustSuffixArrayBlocking::new(key(), 5, 10, SimilarityFunction::JaroWinkler, 0.85)
            .unwrap()
            .block(&ds)
            .unwrap();
        assert!(!sua.theta(RecordId(0), RecordId(1)), "plain suffix groups never merge the typo variants");
        assert!(rsua.theta(RecordId(0), RecordId(1)), "robust merging recovers the typo variants");
        assert!(!rsua.theta(RecordId(0), RecordId(2)));
    }

    #[test]
    fn exact_duplicates_always_pair() {
        let ds = people(&[("qing", "wang", 0), ("qing", "wang", 0)]);
        for blocker in [
            Box::new(SuffixArrayBlocking::new(key(), 3, 10).unwrap()) as Box<dyn Blocker>,
            Box::new(AllSubstringsBlocking::new(key(), 3, 10).unwrap()),
            Box::new(RobustSuffixArrayBlocking::new(key(), 3, 10, SimilarityFunction::EditDistance, 0.9).unwrap()),
        ] {
            let blocks = blocker.block(&ds).unwrap();
            assert!(blocks.theta(RecordId(0), RecordId(1)), "{} must pair exact duplicates", blocker.name());
        }
    }

    #[test]
    fn unknown_key_attribute_errors() {
        let ds = people(&[("a", "b", 0)]);
        assert!(SuffixArrayBlocking::new(BlockingKey::cora(), 3, 10).unwrap().block(&ds).is_err());
    }
}
