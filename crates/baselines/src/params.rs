//! The parameter grids swept in the paper's state-of-the-art comparison
//! (§6.3.4, Table 3 and Fig. 11).
//!
//! Each technique is evaluated over a grid of settings and the best-FM
//! setting is reported. The grids below follow the paper's description:
//! window sizes {2, 3, 5, 7, 10} for the sorted neighbourhood variants, the
//! four string-similarity functions with thresholds {0.8, 0.9} for ASor and
//! RSuA, q ∈ {2, 3} with thresholds {0.8, 0.9} for QGr, canopy thresholds
//! {0.95/0.85, 0.9/0.8, 0.8/0.7} with Jaccard and TF-IDF cosine, neighbour
//! counts {5/10, 10/20} for CaNN, mapping dimensions {15, 20} and grid sizes
//! for the string-map variants, and suffix lengths {3, 5} with block-size
//! caps {5, 10, 20} for the suffix-array family.
//!
//! [`full_grids`] reproduces the full sweep (≈160 settings);
//! [`reduced_grids`] keeps 1-2 representative settings per technique for
//! quick experiments, smoke tests and CI.

use sablock_core::blocking::Blocker;
use sablock_textual::similarity::SimilarityFunction;

use crate::canopy::{CanopyNearestNeighbour, CanopySimilarity, CanopyThreshold};
use crate::key::BlockingKey;
use crate::meta::{MetaBlocking, PruningAlgorithm, WeightingScheme};
use crate::qgram::QGramBlocking;
use crate::sorted::{AdaptiveSortedNeighbourhood, SortedNeighbourhoodArray, SortedNeighbourhoodInverted};
use crate::standard::{StandardBlocking, TokenBlocking};
use crate::stringmap::{StringMapNearestNeighbour, StringMapThreshold};
use crate::suffix::{AllSubstringsBlocking, RobustSuffixArrayBlocking, SuffixArrayBlocking};

/// A technique with the set of parameterised blockers to sweep.
pub struct TechniqueGrid {
    /// The abbreviation used in Table 3 (TBlo, SorA, …).
    pub technique: &'static str,
    /// One blocker per parameter setting.
    pub settings: Vec<Box<dyn Blocker>>,
}

impl TechniqueGrid {
    fn new(technique: &'static str, settings: Vec<Box<dyn Blocker>>) -> Self {
        Self { technique, settings }
    }

    /// Number of parameter settings in the grid.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }
}

/// The abbreviations of Table 3, in its row order (excluding LSH/SA-LSH,
/// which live in `sablock-core`).
pub const TECHNIQUE_ORDER: [&str; 12] = [
    "TBlo", "SorA", "SorII", "ASor", "QGr", "CaTh", "CaNN", "StMT", "StMNN", "SuA", "SuAS", "RSuA",
];

fn windows() -> [usize; 5] {
    [2, 3, 5, 7, 10]
}

fn survey_similarities() -> Vec<SimilarityFunction> {
    SimilarityFunction::survey_sweep()
}

/// The full parameter grids of the survey comparison.
pub fn full_grids(key: &BlockingKey) -> Vec<TechniqueGrid> {
    let mut grids = Vec::new();

    grids.push(TechniqueGrid::new(
        "TBlo",
        vec![Box::new(StandardBlocking::new(key.clone())) as Box<dyn Blocker>],
    ));

    grids.push(TechniqueGrid::new(
        "SorA",
        windows()
            .iter()
            .map(|&w| Box::new(SortedNeighbourhoodArray::new(key.clone(), w).expect("window >= 2")) as Box<dyn Blocker>)
            .collect(),
    ));

    grids.push(TechniqueGrid::new(
        "SorII",
        windows()
            .iter()
            .map(|&w| Box::new(SortedNeighbourhoodInverted::new(key.clone(), w).expect("window >= 2")) as Box<dyn Blocker>)
            .collect(),
    ));

    let mut asor: Vec<Box<dyn Blocker>> = Vec::new();
    for similarity in survey_similarities() {
        for threshold in [0.8, 0.9] {
            asor.push(Box::new(
                AdaptiveSortedNeighbourhood::new(key.clone(), similarity, threshold).expect("valid threshold"),
            ));
        }
    }
    grids.push(TechniqueGrid::new("ASor", asor));

    let mut qgr: Vec<Box<dyn Blocker>> = Vec::new();
    for q in [2usize, 3] {
        for threshold in [0.8, 0.9] {
            qgr.push(Box::new(QGramBlocking::new(key.clone(), q, threshold).expect("valid parameters")));
        }
    }
    grids.push(TechniqueGrid::new("QGr", qgr));

    let mut cath: Vec<Box<dyn Blocker>> = Vec::new();
    for similarity in [CanopySimilarity::Jaccard { q: 2 }, CanopySimilarity::TfIdfCosine] {
        for (tight, loose) in [(0.95, 0.85), (0.9, 0.8), (0.8, 0.7), (0.7, 0.6)] {
            cath.push(Box::new(CanopyThreshold::new(key.clone(), similarity, tight, loose).expect("valid thresholds")));
        }
    }
    grids.push(TechniqueGrid::new("CaTh", cath));

    let mut cann: Vec<Box<dyn Blocker>> = Vec::new();
    for similarity in [CanopySimilarity::Jaccard { q: 2 }, CanopySimilarity::TfIdfCosine] {
        for (remove, include) in [(5, 10), (10, 20), (3, 5), (20, 40)] {
            cann.push(Box::new(
                CanopyNearestNeighbour::new(key.clone(), similarity, remove, include).expect("valid neighbour counts"),
            ));
        }
    }
    grids.push(TechniqueGrid::new("CaNN", cann));

    let mut stmt: Vec<Box<dyn Blocker>> = Vec::new();
    for dimensions in [15usize, 20] {
        for grid_cell in [1.0, 2.0] {
            for similarity in survey_similarities() {
                for threshold in [0.8, 0.9] {
                    stmt.push(Box::new(
                        StringMapThreshold::new(key.clone(), dimensions, grid_cell, similarity, threshold)
                            .expect("valid parameters"),
                    ));
                }
            }
        }
    }
    grids.push(TechniqueGrid::new("StMT", stmt));

    let mut stmnn: Vec<Box<dyn Blocker>> = Vec::new();
    for dimensions in [15usize, 20] {
        for grid_cell in [1.0, 2.0] {
            for neighbours in [2usize, 5, 10, 20] {
                stmnn.push(Box::new(
                    StringMapNearestNeighbour::new(key.clone(), dimensions, grid_cell, neighbours).expect("valid parameters"),
                ));
            }
        }
    }
    grids.push(TechniqueGrid::new("StMNN", stmnn));

    let mut sua: Vec<Box<dyn Blocker>> = Vec::new();
    let mut suas: Vec<Box<dyn Blocker>> = Vec::new();
    for min_len in [3usize, 5] {
        for max_block in [5usize, 10, 20] {
            sua.push(Box::new(SuffixArrayBlocking::new(key.clone(), min_len, max_block).expect("valid parameters")));
            suas.push(Box::new(AllSubstringsBlocking::new(key.clone(), min_len, max_block).expect("valid parameters")));
        }
    }
    grids.push(TechniqueGrid::new("SuA", sua));
    grids.push(TechniqueGrid::new("SuAS", suas));

    let mut rsua: Vec<Box<dyn Blocker>> = Vec::new();
    for min_len in [3usize, 5] {
        for max_block in [5usize, 10, 20] {
            for similarity in survey_similarities() {
                for threshold in [0.8, 0.9] {
                    rsua.push(Box::new(
                        RobustSuffixArrayBlocking::new(key.clone(), min_len, max_block, similarity, threshold)
                            .expect("valid parameters"),
                    ));
                }
            }
        }
    }
    grids.push(TechniqueGrid::new("RSuA", rsua));

    grids
}

/// A reduced grid with 1-2 representative settings per technique, for quick
/// experiments and tests.
pub fn reduced_grids(key: &BlockingKey) -> Vec<TechniqueGrid> {
    vec![
        TechniqueGrid::new("TBlo", vec![Box::new(StandardBlocking::new(key.clone()))]),
        TechniqueGrid::new(
            "SorA",
            vec![
                Box::new(SortedNeighbourhoodArray::new(key.clone(), 3).expect("window >= 2")),
                Box::new(SortedNeighbourhoodArray::new(key.clone(), 7).expect("window >= 2")),
            ],
        ),
        TechniqueGrid::new(
            "SorII",
            vec![Box::new(SortedNeighbourhoodInverted::new(key.clone(), 3).expect("window >= 2"))],
        ),
        TechniqueGrid::new(
            "ASor",
            vec![Box::new(
                AdaptiveSortedNeighbourhood::new(key.clone(), SimilarityFunction::JaroWinkler, 0.8).expect("valid threshold"),
            )],
        ),
        TechniqueGrid::new("QGr", vec![Box::new(QGramBlocking::new(key.clone(), 2, 0.8).expect("valid parameters"))]),
        TechniqueGrid::new(
            "CaTh",
            vec![Box::new(
                CanopyThreshold::new(key.clone(), CanopySimilarity::Jaccard { q: 2 }, 0.8, 0.5).expect("valid thresholds"),
            )],
        ),
        TechniqueGrid::new(
            "CaNN",
            vec![Box::new(
                CanopyNearestNeighbour::new(key.clone(), CanopySimilarity::Jaccard { q: 2 }, 5, 10).expect("valid counts"),
            )],
        ),
        TechniqueGrid::new(
            "StMT",
            vec![Box::new(
                StringMapThreshold::new(key.clone(), 8, 2.0, SimilarityFunction::JaroWinkler, 0.8).expect("valid parameters"),
            )],
        ),
        TechniqueGrid::new(
            "StMNN",
            vec![Box::new(StringMapNearestNeighbour::new(key.clone(), 8, 2.0, 5).expect("valid parameters"))],
        ),
        TechniqueGrid::new("SuA", vec![Box::new(SuffixArrayBlocking::new(key.clone(), 3, 10).expect("valid parameters"))]),
        TechniqueGrid::new(
            "SuAS",
            vec![Box::new(AllSubstringsBlocking::new(key.clone(), 3, 10).expect("valid parameters"))],
        ),
        TechniqueGrid::new(
            "RSuA",
            vec![Box::new(
                RobustSuffixArrayBlocking::new(key.clone(), 3, 10, SimilarityFunction::JaroWinkler, 0.8).expect("valid parameters"),
            )],
        ),
    ]
}

/// The 20 meta-blocking configurations of Fig. 12 (4 pruning algorithms × 5
/// weighting schemes) over a token-blocking input.
pub fn meta_blocking_grid(key: &BlockingKey) -> Vec<Box<dyn Blocker>> {
    let mut out: Vec<Box<dyn Blocker>> = Vec::new();
    for pruning in PruningAlgorithm::ALL {
        for scheme in WeightingScheme::ALL {
            out.push(Box::new(MetaBlocking::new(TokenBlocking::new(key.clone()), scheme, pruning)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_technique_in_order() {
        let grids = full_grids(&BlockingKey::cora());
        let names: Vec<&str> = grids.iter().map(|g| g.technique).collect();
        assert_eq!(names, TECHNIQUE_ORDER.to_vec());
        assert!(grids.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn full_grid_setting_counts_match_the_survey_scale() {
        let grids = full_grids(&BlockingKey::ncvoter());
        let count = |name: &str| grids.iter().find(|g| g.technique == name).unwrap().len();
        assert_eq!(count("TBlo"), 1);
        assert_eq!(count("SorA"), 5);
        assert_eq!(count("SorII"), 5);
        assert_eq!(count("ASor"), 8);
        assert_eq!(count("QGr"), 4);
        assert_eq!(count("CaTh"), 8);
        assert_eq!(count("CaNN"), 8);
        assert_eq!(count("StMT"), 32);
        assert_eq!(count("StMNN"), 16);
        assert_eq!(count("SuA"), 6);
        assert_eq!(count("SuAS"), 6);
        assert_eq!(count("RSuA"), 48);
        let total: usize = grids.iter().map(TechniqueGrid::len).sum();
        // The paper sweeps 163 settings in total; our StMNN grid differs
        // slightly (16 instead of 32) because its parameters are not fully
        // specified, leaving 147 settings overall.
        assert!(total >= 140, "total settings {total}");
    }

    #[test]
    fn reduced_grid_covers_every_technique_cheaply() {
        let grids = reduced_grids(&BlockingKey::cora());
        let names: Vec<&str> = grids.iter().map(|g| g.technique).collect();
        assert_eq!(names, TECHNIQUE_ORDER.to_vec());
        let total: usize = grids.iter().map(TechniqueGrid::len).sum();
        assert!(total <= 20);
    }

    #[test]
    fn meta_grid_has_twenty_configurations() {
        let grid = meta_blocking_grid(&BlockingKey::cora());
        assert_eq!(grid.len(), 20);
        let names: Vec<String> = grid.iter().map(|b| b.name()).collect();
        assert!(names.iter().any(|n| n.contains("WEP") && n.contains("ARCS")));
        assert!(names.iter().any(|n| n.contains("CNP") && n.contains("EJS")));
    }

    #[test]
    fn grid_blockers_run_on_a_tiny_dataset() {
        use sablock_datasets::dataset::DatasetBuilder;
        use sablock_datasets::ground_truth::EntityId;
        use sablock_datasets::Schema;
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("tiny", schema);
        for (f, l, e) in [
            ("anna", "anderson", 0),
            ("anna", "andersen", 0),
            ("bob", "baker", 1),
            ("bob", "baker", 1),
            ("carl", "carter", 2),
        ] {
            b.push_values(vec![Some(f.into()), Some(l.into())], EntityId(e)).unwrap();
        }
        let ds = b.build().unwrap();
        for grid in reduced_grids(&BlockingKey::ncvoter()) {
            for blocker in &grid.settings {
                let blocks = blocker.block(&ds).unwrap_or_else(|e| panic!("{} failed: {e}", blocker.name()));
                // Exact duplicates (records 2, 3) must be caught by every technique.
                assert!(
                    blocks.theta(sablock_datasets::RecordId(2), sablock_datasets::RecordId(3)),
                    "{} missed the exact duplicate",
                    blocker.name()
                );
            }
        }
    }
}
