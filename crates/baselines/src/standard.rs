//! Standard (traditional) blocking and token blocking.
//!
//! * **TBlo** — the classic Fellegi-Sunter style blocking: records are grouped
//!   by the exact value of a blocking key. Cheap and precise but brittle:
//!   "Qing Wang" and "Wang Qing" never share a block, which is exactly the
//!   limitation the paper's introduction calls out.
//! * **Token blocking** — every record joins one block per distinct key token.
//!   Highly redundant (a record belongs to many blocks), which is what makes
//!   it the canonical *input* of meta-blocking (Fig. 12).

use std::collections::BTreeMap;

use sablock_datasets::{Dataset, RecordId};

use sablock_core::blocking::{BlockCollection, Blocker};
use sablock_core::error::Result;

use crate::key::BlockingKey;

/// Standard blocking (TBlo in Table 3): one block per distinct key value.
#[derive(Debug, Clone)]
pub struct StandardBlocking {
    key: BlockingKey,
}

impl StandardBlocking {
    /// Creates a standard blocker over the given key.
    pub fn new(key: BlockingKey) -> Self {
        Self { key }
    }

    /// The blocking key.
    pub fn key(&self) -> &BlockingKey {
        &self.key
    }
}

impl Blocker for StandardBlocking {
    fn name(&self) -> String {
        format!("TBlo({})", self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let mut buckets: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for record in dataset.records() {
            let key = self.key.value(record);
            if key.is_empty() {
                continue;
            }
            buckets.entry(key).or_default().push(record.id());
        }
        Ok(BlockCollection::from_key_map(buckets))
    }
}

/// Token blocking: one block per distinct token of the blocking key.
///
/// Optionally drops tokens shorter than `min_token_len` (initials and stop
/// words produce huge, useless blocks) and blocks larger than
/// `max_block_size` (the usual redundancy-positive safeguard).
#[derive(Debug, Clone)]
pub struct TokenBlocking {
    key: BlockingKey,
    min_token_len: usize,
    max_block_size: Option<usize>,
}

impl TokenBlocking {
    /// Creates a token blocker with a minimum token length of 2 and no block
    /// size cap.
    pub fn new(key: BlockingKey) -> Self {
        Self {
            key,
            min_token_len: 2,
            max_block_size: None,
        }
    }

    /// Sets the minimum token length.
    pub fn with_min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len;
        self
    }

    /// Caps the size of emitted blocks (larger blocks are discarded).
    pub fn with_max_block_size(mut self, size: usize) -> Self {
        self.max_block_size = Some(size);
        self
    }
}

impl Blocker for TokenBlocking {
    fn name(&self) -> String {
        format!("TokenBlocking({})", self.key.describe())
    }

    fn block(&self, dataset: &Dataset) -> Result<BlockCollection> {
        self.key.validate_against(dataset)?;
        let mut buckets: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for record in dataset.records() {
            let key = self.key.value(record);
            for token in key.split(' ') {
                if token.chars().count() < self.min_token_len {
                    continue;
                }
                buckets.entry(token.to_string()).or_default().push(record.id());
            }
        }
        if let Some(cap) = self.max_block_size {
            buckets.retain(|_, members| members.len() <= cap);
        }
        Ok(BlockCollection::from_key_map(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyEncoding;
    use sablock_datasets::dataset::DatasetBuilder;
    use sablock_datasets::ground_truth::EntityId;
    use sablock_datasets::Schema;

    fn people() -> Dataset {
        let schema = Schema::shared(["first_name", "last_name"]).unwrap();
        let mut b = DatasetBuilder::new("people", schema);
        let rows = [
            ("qing", "wang", 0),
            ("qing", "wang", 0),   // exact duplicate
            ("wang", "qing", 0),   // transposed duplicate — TBlo misses it
            ("huizhi", "liang", 1),
            ("huizi", "liang", 1), // typo duplicate
            ("mingyuan", "cui", 2),
            ("", "", 3),           // empty record
        ];
        for (f, l, e) in rows {
            let first = if f.is_empty() { None } else { Some(f.to_string()) };
            let last = if l.is_empty() { None } else { Some(l.to_string()) };
            b.push_values(vec![first, last], EntityId(e)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn standard_blocking_groups_exact_keys_only() {
        let ds = people();
        let blocker = StandardBlocking::new(BlockingKey::ncvoter());
        assert!(blocker.name().contains("TBlo"));
        let blocks = blocker.block(&ds).unwrap();
        // Only the exact duplicates share a key.
        assert!(blocks.theta(RecordId(0), RecordId(1)));
        // The transposed name does NOT (the limitation the paper highlights)…
        assert!(!blocks.theta(RecordId(0), RecordId(2)));
        // …and neither does the typo variant.
        assert!(!blocks.theta(RecordId(3), RecordId(4)));
        // Empty records are not indexed.
        assert!(blocks.distinct_pairs().iter().all(|p| p.second() != RecordId(6)));
    }

    #[test]
    fn soundex_key_recovers_typo_duplicates() {
        let ds = people();
        let key = BlockingKey::new(["last_name", "first_name"], KeyEncoding::Soundex).unwrap();
        let blocks = StandardBlocking::new(key).block(&ds).unwrap();
        assert!(blocks.theta(RecordId(3), RecordId(4)), "soundex('huizhi') == soundex('huizi')");
    }

    #[test]
    fn token_blocking_recovers_transposed_names() {
        let ds = people();
        let blocks = TokenBlocking::new(BlockingKey::ncvoter()).block(&ds).unwrap();
        // "qing" and "wang" are shared tokens regardless of order.
        assert!(blocks.theta(RecordId(0), RecordId(2)));
        // Records of different entities sharing a token also collide (high
        // redundancy is expected from token blocking).
        assert!(blocks.redundant_pair_count() >= blocks.num_distinct_pairs());
    }

    #[test]
    fn token_blocking_filters_short_tokens_and_big_blocks() {
        let ds = people();
        let blocks = TokenBlocking::new(BlockingKey::ncvoter())
            .with_min_token_len(5)
            .block(&ds)
            .unwrap();
        // "cui" and "wang" and "qing" are shorter than 5; only "huizhi"/"huizi"/"liang"/"mingyuan" survive.
        assert!(!blocks.theta(RecordId(0), RecordId(2)));
        assert!(blocks.theta(RecordId(3), RecordId(4)), "shared token 'liang'");

        let capped = TokenBlocking::new(BlockingKey::ncvoter())
            .with_max_block_size(1)
            .block(&ds)
            .unwrap();
        assert_eq!(capped.num_distinct_pairs(), 0);
    }

    #[test]
    fn unknown_key_attributes_error() {
        let ds = people();
        let blocker = StandardBlocking::new(BlockingKey::cora());
        assert!(blocker.block(&ds).is_err());
        let blocker = TokenBlocking::new(BlockingKey::cora());
        assert!(blocker.block(&ds).is_err());
    }
}
