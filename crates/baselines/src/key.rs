//! Blocking-key definitions shared by the key-based baselines.
//!
//! A *blocking key* maps a record to a string used for grouping (standard
//! blocking), sorting (sorted neighbourhood), suffix generation (suffix-array
//! blocking) or embedding (string-map blocking). The paper defines a key on
//! `authors` + `title` for Cora and on `first name` + `last name` for NC
//! Voter (§6.3.4).

use sablock_datasets::{Dataset, Record};
use sablock_textual::normalize::{normalize, normalize_compact};
use sablock_textual::phonetic::soundex;

use sablock_core::error::{CoreError, Result};

/// How each attribute value is encoded into the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyEncoding {
    /// The full normalised value.
    Exact,
    /// The first `n` characters of the normalised, space-free value.
    Prefix(u8),
    /// The Soundex code of the value's first token.
    Soundex,
}

/// A blocking key: an ordered list of attributes plus an encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockingKey {
    attributes: Vec<String>,
    encoding: KeyEncoding,
}

impl BlockingKey {
    /// Creates a key over the named attributes with the given encoding.
    pub fn new<I, S>(attributes: I, encoding: KeyEncoding) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        if attributes.is_empty() {
            return Err(CoreError::Config("a blocking key needs at least one attribute".into()));
        }
        Ok(Self { attributes, encoding })
    }

    /// An exact-value key (the most common configuration in the survey).
    pub fn exact<I, S>(attributes: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(attributes, KeyEncoding::Exact)
    }

    /// The Cora key used throughout the paper's comparison: `authors` + `title`.
    pub fn cora() -> Self {
        Self::exact(["authors", "title"]).expect("static attribute list is non-empty")
    }

    /// The NC Voter key: `first_name` + `last_name`.
    pub fn ncvoter() -> Self {
        Self::exact(["first_name", "last_name"]).expect("static attribute list is non-empty")
    }

    /// The attributes of the key.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The encoding of the key.
    pub fn encoding(&self) -> KeyEncoding {
        self.encoding
    }

    /// A short description used in blocker names.
    pub fn describe(&self) -> String {
        let enc = match self.encoding {
            KeyEncoding::Exact => "exact".to_string(),
            KeyEncoding::Prefix(n) => format!("prefix{n}"),
            KeyEncoding::Soundex => "soundex".to_string(),
        };
        format!("{}:{}", self.attributes.join("+"), enc)
    }

    /// Validates the key against a dataset schema.
    pub fn validate_against(&self, dataset: &Dataset) -> Result<()> {
        for attribute in &self.attributes {
            if dataset.schema().index_of(attribute).is_none() {
                return Err(CoreError::Config(format!(
                    "blocking-key attribute '{attribute}' does not exist in dataset '{}'",
                    dataset.name()
                )));
            }
        }
        Ok(())
    }

    /// The key value of a record: encoded attribute values joined by a space.
    /// Missing attributes contribute nothing; a record with no present value
    /// yields an empty key (which blockers treat as "cannot be indexed").
    pub fn value(&self, record: &Record) -> String {
        let mut parts = Vec::with_capacity(self.attributes.len());
        for attribute in &self.attributes {
            let Some(raw) = record.value(attribute) else { continue };
            let encoded = match self.encoding {
                KeyEncoding::Exact => normalize(raw),
                KeyEncoding::Prefix(n) => normalize_compact(raw).chars().take(usize::from(n)).collect(),
                KeyEncoding::Soundex => {
                    let first_token = normalize(raw);
                    let first_token = first_token.split(' ').next().unwrap_or("");
                    soundex(first_token)
                }
            };
            if !encoded.is_empty() {
                parts.push(encoded);
            }
        }
        parts.join(" ")
    }

    /// The compact (space-free) key value, used by suffix-array and string-map
    /// blocking which operate on a single undelimited string.
    pub fn compact_value(&self, record: &Record) -> String {
        self.value(record).replace(' ', "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sablock_datasets::record::RecordBuilder;
    use sablock_datasets::{CoraConfig, CoraGenerator, RecordId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::shared(["first_name", "last_name", "title"]).unwrap()
    }

    fn record(first: Option<&str>, last: Option<&str>) -> Record {
        let mut b = RecordBuilder::new(schema());
        if let Some(f) = first {
            b = b.set("first_name", f).unwrap();
        }
        if let Some(l) = last {
            b = b.set("last_name", l).unwrap();
        }
        b.build(RecordId(0))
    }

    #[test]
    fn construction_and_description() {
        assert!(BlockingKey::exact(Vec::<String>::new()).is_err());
        let key = BlockingKey::new(["last_name", "first_name"], KeyEncoding::Prefix(3)).unwrap();
        assert_eq!(key.attributes(), &["last_name", "first_name"]);
        assert_eq!(key.encoding(), KeyEncoding::Prefix(3));
        assert_eq!(key.describe(), "last_name+first_name:prefix3");
        assert_eq!(BlockingKey::cora().describe(), "authors+title:exact");
        assert_eq!(BlockingKey::ncvoter().describe(), "first_name+last_name:exact");
    }

    #[test]
    fn exact_encoding_normalizes() {
        let key = BlockingKey::exact(["first_name", "last_name"]).unwrap();
        assert_eq!(key.value(&record(Some("  Qing "), Some("WANG!"))), "qing wang");
        assert_eq!(key.compact_value(&record(Some("Qing"), Some("Wang"))), "qingwang");
    }

    #[test]
    fn prefix_and_soundex_encodings() {
        let prefix = BlockingKey::new(["last_name"], KeyEncoding::Prefix(4)).unwrap();
        assert_eq!(prefix.value(&record(None, Some("Washington"))), "wash");
        let sdx = BlockingKey::new(["last_name"], KeyEncoding::Soundex).unwrap();
        assert_eq!(sdx.value(&record(None, Some("Robert"))), "R163");
        assert_eq!(sdx.value(&record(None, Some("Rupert"))), "R163");
    }

    #[test]
    fn missing_values_are_skipped() {
        let key = BlockingKey::exact(["first_name", "last_name"]).unwrap();
        assert_eq!(key.value(&record(None, Some("Wang"))), "wang");
        assert_eq!(key.value(&record(None, None)), "");
    }

    #[test]
    fn validation_against_dataset() {
        let ds = CoraGenerator::new(CoraConfig { num_records: 5, ..CoraConfig::small() }).generate().unwrap();
        assert!(BlockingKey::cora().validate_against(&ds).is_ok());
        assert!(BlockingKey::ncvoter().validate_against(&ds).is_err());
    }
}
