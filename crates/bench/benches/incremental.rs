//! Micro-benchmark of incremental ingest vs from-scratch rebuild: the
//! operational question behind the streaming-ingest subsystem is "what does
//! absorbing one batch cost, against re-blocking everything?". The bench
//! pre-loads an incremental SA-LSH index with all but the final batch, then
//! measures (a) inserting that batch — cloning the pre-loaded index per
//! iteration, so the clone cost is reported separately as a baseline — and
//! (b) one-shot blocking of the full dataset, which is what a non-
//! incremental deployment would re-run per batch.
//!
//! A second group pits the O(1) running-counter metrics read against the
//! O(corpus) snapshot re-count it replaces, and measures the removal path
//! (back-reference walk + counter subtraction + threshold compaction).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_core::blocking::{Blocker, EntityTableProbe};
use sablock_core::incremental::IncrementalBlocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_datasets::{Record, RecordId};
use sablock_eval::experiments::{voter_dataset_of_size, voter_salsh, VOTER_SEMANTIC_BITS};

const DATASET_RECORDS: usize = 4_096;
const BATCH_RECORDS: usize = 256;

fn bench(c: &mut Criterion) {
    let dataset = voter_dataset_of_size(DATASET_RECORDS).expect("voter dataset");
    let blocker = voter_salsh(9, 15, VOTER_SEMANTIC_BITS, SemanticMode::Or).expect("salsh blocker");

    // Pre-load everything but the last batch.
    let split = DATASET_RECORDS - BATCH_RECORDS;
    let (prefix, batch): (&[Record], &[Record]) = dataset.records().split_at(split);
    let mut preloaded = blocker.clone().into_incremental().expect("incremental blocker");
    preloaded.insert_batch(prefix).expect("pre-load ingest");

    let mut group = c.benchmark_group("incremental/insert_vs_rebuild");
    group.sample_size(10);
    group.bench_function(format!("clone_index_{split}r"), |b| {
        b.iter(|| black_box(preloaded.clone()))
    });
    group.bench_function(format!("insert_batch_{BATCH_RECORDS}r_into_{split}r"), |b| {
        b.iter(|| {
            let mut index = preloaded.clone();
            let delta = index.insert_batch(black_box(batch)).expect("insert");
            black_box(delta.runs().len())
        })
    });
    group.bench_function(format!("rebuild_block_{DATASET_RECORDS}r"), |b| {
        b.iter(|| {
            let blocks = blocker.block(black_box(&dataset)).expect("rebuild");
            black_box(blocks.num_blocks())
        })
    });
    group.finish();

    // Running-counter metrics (O(1)) vs a full snapshot re-count (O(corpus)),
    // plus the removal path, on a fully-loaded annotated index.
    let truth = dataset.ground_truth();
    let mut loaded = blocker.into_incremental().expect("incremental blocker");
    let mut offset = 0usize;
    for chunk in dataset.records().chunks(512) {
        loaded
            .insert_batch_with_entities(chunk, &truth.entity_table()[offset..offset + chunk.len()])
            .expect("annotated ingest");
        offset += chunk.len();
    }

    let mut group = c.benchmark_group("incremental/metrics_and_removal");
    group.sample_size(10);
    group.bench_function(format!("running_counts_read_{DATASET_RECORDS}r"), |b| {
        b.iter(|| black_box(loaded.running_counts()))
    });
    group.bench_function(format!("snapshot_recount_{DATASET_RECORDS}r"), |b| {
        b.iter(|| {
            let counts = loaded
                .snapshot()
                .stream_packed_counts(EntityTableProbe::new(loaded.entity_table()));
            black_box(counts.distinct)
        })
    });
    group.bench_function(format!("remove_one_record_from_{DATASET_RECORDS}r"), |b| {
        b.iter(|| {
            let mut index = loaded.clone();
            black_box(index.remove(black_box(RecordId(7))).expect("remove"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
