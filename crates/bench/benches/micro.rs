//! Micro-benchmarks of the hot paths: q-gram extraction, minhash signatures,
//! semhash signatures, banding keys, the similarity metrics used by the
//! baselines, and the packed pair-merge machinery (loser-tree vs heap merge,
//! radix vs tuple sort) behind the streaming Γ counter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_core::blocking::{merge_count_packed_runs, radix_sort_packed, PairCounts};
use sablock_core::lsh::BandingScheme;
use sablock_core::minhash::{MinHasher, MinhashConfig};
use sablock_core::semantic::pattern::PatternSemanticFunction;
use sablock_core::semantic::semhash::SemhashFamily;
use sablock_core::semantic::SemanticFunction;
use sablock_core::taxonomy::bib::bibliographic_taxonomy;
use sablock_datasets::record::RecordPair;
use sablock_datasets::{CoraConfig, CoraGenerator, RecordId};
use sablock_textual::qgrams::hashed_qgram_set;
use sablock_textual::similarity::{SimilarityFunction, StringSimilarity};

const TITLE_A: &str = "the cascade correlation learning architecture for neural networks";
const TITLE_B: &str = "a genetic cascade correlation learning algorithm for neural nets";

fn bench_textual(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/textual");
    group.bench_function("qgram_set_q4", |b| b.iter(|| hashed_qgram_set(black_box(TITLE_A), 4)));
    for function in [
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::QGram(2),
        SimilarityFunction::EditDistance,
        SimilarityFunction::LongestCommonSubstring,
    ] {
        group.bench_function(format!("similarity/{}", function.name()), |b| {
            b.iter(|| function.similarity(black_box(TITLE_A), black_box(TITLE_B)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let shingles = hashed_qgram_set(TITLE_A, 4);
    let hasher = MinHasher::from_config(&MinhashConfig::cora_paper());
    let banding = BandingScheme::new(63, 4).unwrap();
    let signature = hasher.signature(&shingles);

    let mut group = c.benchmark_group("micro/signatures");
    group.bench_function("minhash_signature_252", |b| b.iter(|| hasher.signature(black_box(&shingles))));
    group.bench_function("band_keys_63", |b| b.iter(|| banding.band_keys(black_box(&signature))));
    group.finish();
}

fn bench_semantics(c: &mut Criterion) {
    let dataset = CoraGenerator::new(CoraConfig {
        num_records: 200,
        ..CoraConfig::small()
    })
    .generate()
    .unwrap();
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let interpretations: Vec<_> = dataset.records().iter().map(|r| zeta.interpret(r)).collect();
    let family = SemhashFamily::build(&tree, interpretations.iter()).unwrap();
    let record = &dataset.records()[0];

    let mut group = c.benchmark_group("micro/semantics");
    group.bench_function("interpret_record", |b| b.iter(|| zeta.interpret(black_box(record))));
    group.bench_function("semhash_signature", |b| {
        b.iter(|| family.signature(black_box(&tree), black_box(&interpretations[0])))
    });
    group.finish();
}

/// A deterministic xorshift so the merge/sort inputs are reproducible
/// without pulling the dataset generators into a micro-bench.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Sorted, deduplicated packed runs shaped like the streaming counter's
/// per-shard runs: each run is the pair enumeration of `blocks` small
/// blocks — a cluster of consecutive keys per anchor — over a
/// `universe`-record id space (smaller universes ⇒ heavier cross-run
/// duplication; the full-scale SA-LSH merge collapses ~13.6× cross-run
/// redundancy).
fn synthetic_runs(runs: usize, blocks: usize, block_size: u64, universe: u64) -> Vec<Vec<u64>> {
    let mut rng = XorShift(0x5AB10C ^ ((runs as u64) << 32) ^ blocks as u64);
    (0..runs)
        .map(|_| {
            let mut keys: Vec<u64> = Vec::with_capacity(blocks * block_size as usize);
            for _ in 0..blocks {
                let anchor = (rng.next() % universe) as u32;
                let base = anchor + 1 + (rng.next() % 64) as u32;
                let width = u32::try_from(block_size).expect("synthetic block sizes fit u32");
                for j in 0..width {
                    keys.push(RecordPair::pack_ascending(RecordId(anchor), RecordId(base + j)));
                }
            }
            keys.sort_unstable();
            keys.dedup();
            keys
        })
        .collect()
}

/// The PR-3 k-way merge counter this PR replaced, verbatim: a binary heap of
/// `Reverse<(RecordPair, usize)>` heads, one pop + push per redundant pair,
/// with a closure probe per emitted distinct pair.
fn heap_merge_count(runs: &[Vec<RecordPair>], probe: impl Fn(&RecordPair) -> bool) -> PairCounts {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut iters: Vec<_> = runs.iter().map(|run| run.iter().copied()).collect();
    let mut heap: BinaryHeap<Reverse<(RecordPair, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (idx, iter) in iters.iter_mut().enumerate() {
        if let Some(pair) = iter.next() {
            heap.push(Reverse((pair, idx)));
        }
    }
    let mut counts = PairCounts::default();
    let mut last: Option<RecordPair> = None;
    while let Some(Reverse((pair, idx))) = heap.pop() {
        if last != Some(pair) {
            counts.distinct += 1;
            if probe(&pair) {
                counts.matching += 1;
            }
            last = Some(pair);
        }
        if let Some(next) = iters[idx].next() {
            heap.push(Reverse((next, idx)));
        }
    }
    counts
}

fn bench_pair_merge(c: &mut Criterion) {
    let probe = |p: &RecordPair| p.first().0 % 7 == 0;
    let mut group = c.benchmark_group("micro/pair_merge");
    group.sample_size(10);
    // Two run shapes: a moderate fan-in, and the ~1,000-run fan-in of a
    // paper-scale pair-space slice (one run per 256-block shard), where the
    // heap's per-pair pop+push pays 2·log₂(k) tuple compares against the
    // loser tree's single path replay (and its per-segment gallop over each
    // block's key cluster).
    for (runs, blocks, universe) in [(48usize, 700usize, 60_000u64), (1_024, 1_400, 12_000)] {
        let packed = synthetic_runs(runs, blocks, 6, universe);
        let tuples: Vec<Vec<RecordPair>> =
            packed.iter().map(|run| run.iter().map(|&key| RecordPair::from_packed(key)).collect()).collect();
        group.bench_function(format!("heap_tuple_merge_{runs}r_{blocks}b_u{universe}"), |b| {
            b.iter(|| heap_merge_count(black_box(&tuples), probe))
        });
        group.bench_function(format!("loser_tree_packed_merge_{runs}r_{blocks}b_u{universe}"), |b| {
            b.iter(|| merge_count_packed_runs(black_box(&packed), &probe))
        });
    }
    group.finish();
}

fn bench_run_sort(c: &mut Criterion) {
    // One unsorted shard enumeration's worth of pairs, as tuples and packed.
    let packed: Vec<u64> = {
        let mut rng = XorShift(0xC0FFEE);
        (0..200_000)
            .map(|_| {
                let a = (rng.next() % 250_000) as u32;
                let b = a + 1 + (rng.next() % 512) as u32;
                RecordPair::pack_ascending(RecordId(a), RecordId(b))
            })
            .collect()
    };
    let tuples: Vec<RecordPair> = packed.iter().map(|&key| RecordPair::from_packed(key)).collect();

    let mut group = c.benchmark_group("micro/run_sort");
    group.sample_size(10);
    group.bench_function("tuple_sort_unstable_200k", |b| {
        b.iter(|| {
            let mut run = tuples.clone();
            run.sort_unstable();
            black_box(run)
        })
    });
    group.bench_function("packed_radix_sort_200k", |b| {
        b.iter(|| {
            let mut run = packed.clone();
            radix_sort_packed(&mut run);
            black_box(run)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_textual, bench_signatures, bench_semantics, bench_pair_merge, bench_run_sort);
criterion_main!(benches);
