//! Micro-benchmarks of the hot paths: q-gram extraction, minhash signatures,
//! semhash signatures, banding keys and the similarity metrics used by the
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_core::lsh::BandingScheme;
use sablock_core::minhash::{MinHasher, MinhashConfig};
use sablock_core::semantic::pattern::PatternSemanticFunction;
use sablock_core::semantic::semhash::SemhashFamily;
use sablock_core::semantic::SemanticFunction;
use sablock_core::taxonomy::bib::bibliographic_taxonomy;
use sablock_datasets::{CoraConfig, CoraGenerator};
use sablock_textual::qgrams::hashed_qgram_set;
use sablock_textual::similarity::{SimilarityFunction, StringSimilarity};

const TITLE_A: &str = "the cascade correlation learning architecture for neural networks";
const TITLE_B: &str = "a genetic cascade correlation learning algorithm for neural nets";

fn bench_textual(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/textual");
    group.bench_function("qgram_set_q4", |b| b.iter(|| hashed_qgram_set(black_box(TITLE_A), 4)));
    for function in [
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::QGram(2),
        SimilarityFunction::EditDistance,
        SimilarityFunction::LongestCommonSubstring,
    ] {
        group.bench_function(format!("similarity/{}", function.name()), |b| {
            b.iter(|| function.similarity(black_box(TITLE_A), black_box(TITLE_B)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let shingles = hashed_qgram_set(TITLE_A, 4);
    let hasher = MinHasher::from_config(&MinhashConfig::cora_paper());
    let banding = BandingScheme::new(63, 4).unwrap();
    let signature = hasher.signature(&shingles);

    let mut group = c.benchmark_group("micro/signatures");
    group.bench_function("minhash_signature_252", |b| b.iter(|| hasher.signature(black_box(&shingles))));
    group.bench_function("band_keys_63", |b| b.iter(|| banding.band_keys(black_box(&signature))));
    group.finish();
}

fn bench_semantics(c: &mut Criterion) {
    let dataset = CoraGenerator::new(CoraConfig {
        num_records: 200,
        ..CoraConfig::small()
    })
    .generate()
    .unwrap();
    let tree = bibliographic_taxonomy();
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let interpretations: Vec<_> = dataset.records().iter().map(|r| zeta.interpret(r)).collect();
    let family = SemhashFamily::build(&tree, interpretations.iter()).unwrap();
    let record = &dataset.records()[0];

    let mut group = c.benchmark_group("micro/semantics");
    group.bench_function("interpret_record", |b| b.iter(|| zeta.interpret(black_box(record))));
    group.bench_function("semhash_signature", |b| {
        b.iter(|| family.signature(black_box(&tree), black_box(&interpretations[0])))
    });
    group.finish();
}

criterion_group!(benches, bench_textual, bench_signatures, bench_semantics);
criterion_main!(benches);
