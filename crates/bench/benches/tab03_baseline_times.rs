//! E-TAB3: blocking time and candidate pairs of every technique (Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_grid_scale, bench_scale};
use sablock_baselines::key::BlockingKey;
use sablock_baselines::standard::StandardBlocking;
use sablock_core::blocking::Blocker;
use sablock_eval::experiments::{tab03, voter_dataset_of_size};

fn bench(c: &mut Criterion) {
    banner("Table 3 — blocking time and candidate pairs (NC Voter timing subset)");
    let dataset = voter_dataset_of_size(bench_scale().voter_timing_records()).expect("voter timing dataset");
    let output = tab03::run_on(&dataset, bench_grid_scale()).expect("tab03 experiment");
    println!("{}", output.to_table().render());

    // Measure the cheapest and a mid-range baseline for reference points.
    let tblo = StandardBlocking::new(BlockingKey::ncvoter());
    let mut group = c.benchmark_group("tab03");
    group.sample_size(10);
    group.bench_function("tblo_block_voter", |b| {
        b.iter(|| tblo.block(black_box(&dataset)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
