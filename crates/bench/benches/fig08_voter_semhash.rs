//! E-FIG8: semantic hash configurations H21–H25 over NC Voter (Fig. 8).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::blocking::Blocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_eval::experiments::{fig08, voter_dataset, voter_salsh};

fn bench(c: &mut Criterion) {
    banner("Fig. 8 — semantic hash functions over NC Voter (k=9, l=15)");
    let dataset = voter_dataset(bench_scale()).expect("voter dataset");
    let output = fig08::run_on(&dataset).expect("fig08 experiment");
    println!("{}", output.to_table().render());

    // Measure one representative SA-LSH blocking pass (H23: w=5, OR).
    let blocker = voter_salsh(9, 15, 5, SemanticMode::Or).unwrap();
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    group.bench_function("salsh_block_voter_w5_or", |b| {
        b.iter(|| blocker.block(black_box(&dataset)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
