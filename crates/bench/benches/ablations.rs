//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * semantic composition: AND vs OR and the value of w,
//! * q-gram size (2 / 3 / 4) for the textual signature,
//! * semhash-as-filter (SA-LSH) vs plain LSH,
//! * sequential vs parallel signature computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sablock_bench::banner;
use sablock_core::blocking::Blocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::minhash::shingle::RecordShingler;
use sablock_core::minhash::{MinHasher, MinhashConfig};
use sablock_core::parallel::parallel_map;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_datasets::Dataset;
use sablock_eval::experiments::{cora_dataset, cora_lsh, cora_salsh, Scale};
use sablock_eval::run_blocker;

fn quality_line(result: &sablock_eval::RunResult) -> String {
    format!(
        "{:<28} PC={:.3} PQ={:.3} RR={:.4} FM={:.3} pairs={}",
        result.configuration,
        result.metrics.pc(),
        result.metrics.pq(),
        result.metrics.rr(),
        result.metrics.fm(),
        result.metrics.candidate_pairs
    )
}

fn ablation_semantic_composition(c: &mut Criterion, dataset: &Dataset) {
    banner("Ablation — semantic composition (AND vs OR, w)");
    for (w, mode) in [(1, SemanticMode::Or), (2, SemanticMode::Or), (4, SemanticMode::Or), (1, SemanticMode::And), (2, SemanticMode::And)] {
        let blocker = cora_salsh(4, 20, w, mode, BibVariant::Full, 0xab1a).unwrap();
        let result = run_blocker("SA-LSH", &blocker, dataset).unwrap();
        println!("{}", quality_line(&result));
    }
    let lsh = cora_lsh(4, 20).unwrap();
    let result = run_blocker("LSH", &lsh, dataset).unwrap();
    println!("{}  <- no semantic filter", quality_line(&result));

    let or2 = cora_salsh(4, 20, 2, SemanticMode::Or, BibVariant::Full, 0xab1a).unwrap();
    let mut group = c.benchmark_group("ablation/semantic_composition");
    group.sample_size(10);
    group.bench_function("salsh_w2_or", |b| b.iter(|| or2.block(black_box(dataset)).unwrap()));
    group.bench_function("lsh_plain", |b| b.iter(|| lsh.block(black_box(dataset)).unwrap()));
    group.finish();
}

fn ablation_qgram_size(c: &mut Criterion, dataset: &Dataset) {
    banner("Ablation — q-gram size");
    let mut group = c.benchmark_group("ablation/qgram_size");
    group.sample_size(10);
    for q in [2usize, 3, 4] {
        let blocker = sablock_core::lsh::salsh::SaLshBlocker::builder()
            .attributes(["title", "authors"])
            .qgram(q)
            .rows_per_band(4)
            .bands(20)
            .build()
            .unwrap();
        let result = run_blocker("LSH", &blocker, dataset).unwrap();
        println!("q={q}: {}", quality_line(&result));
        group.bench_with_input(BenchmarkId::from_parameter(q), &blocker, |b, blocker| {
            b.iter(|| blocker.block(black_box(dataset)).unwrap());
        });
    }
    group.finish();
}

fn ablation_parallelism(c: &mut Criterion, dataset: &Dataset) {
    banner("Ablation — sequential vs parallel signature computation");
    let shingler = RecordShingler::new(["title", "authors"], 4).unwrap();
    let hasher = MinHasher::from_config(&MinhashConfig::cora_paper());
    let shingles: Vec<_> = dataset.records().iter().map(|r| shingler.shingles(r)).collect();
    let mut group = c.benchmark_group("ablation/parallelism");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| parallel_map(black_box(&shingles), threads, |set| hasher.signature(set)));
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let dataset = cora_dataset(Scale::Quick).expect("quick cora dataset");
    ablation_semantic_composition(c, &dataset);
    ablation_qgram_size(c, &dataset);
    ablation_parallelism(c, &dataset);
}

criterion_group!(benches, bench);
criterion_main!(benches);
