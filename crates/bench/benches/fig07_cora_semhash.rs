//! E-FIG7: semantic hash configurations H11–H15 over Cora (Fig. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::blocking::Blocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_core::taxonomy::bib::BibVariant;
use sablock_eval::experiments::{cora_dataset, cora_salsh, fig07};

fn bench(c: &mut Criterion) {
    banner("Fig. 7 — semantic hash functions over Cora (k=4, l=63)");
    let dataset = cora_dataset(bench_scale()).expect("cora dataset");
    let output = fig07::run_on(&dataset).expect("fig07 experiment");
    println!("{}", output.to_table().render());

    // Measure one representative SA-LSH blocking pass (H13: w=2, OR).
    let blocker = cora_salsh(4, 63, 2, SemanticMode::Or, BibVariant::Full, 0x0711).unwrap();
    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("salsh_block_cora_w2_or", |b| {
        b.iter(|| blocker.block(black_box(&dataset)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
