//! E-FIG9: LSH vs SA-LSH over the (k, l) ladder (Fig. 9).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::blocking::Blocker;
use sablock_eval::experiments::{cora_dataset, cora_lsh, fig09, voter_dataset};

fn bench(c: &mut Criterion) {
    banner("Fig. 9 — LSH vs SA-LSH over (k, l)");
    let cora = cora_dataset(bench_scale()).expect("cora dataset");
    let voter = voter_dataset(bench_scale()).expect("voter dataset");
    let cora_panel = fig09::run_cora_on(&cora).expect("fig09 cora panel");
    let voter_panel = fig09::run_voter_on(&voter).expect("fig09 voter panel");
    println!("{}", cora_panel.to_table().render());
    println!("{}", voter_panel.to_table().render());

    // Measure the paper's chosen Cora operating point (k=4, l=63) for LSH.
    let blocker = cora_lsh(4, 63).unwrap();
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function("lsh_block_cora_k4_l63", |b| {
        b.iter(|| blocker.block(black_box(&cora)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
