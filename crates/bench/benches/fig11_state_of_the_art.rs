//! E-FIG11: quality comparison with the state-of-the-art techniques (Fig. 11).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_grid_scale, bench_scale};
use sablock_baselines::key::BlockingKey;
use sablock_baselines::params::reduced_grids;
use sablock_eval::experiments::{cora_dataset, fig11, voter_dataset_of_size};
use sablock_eval::sweep_grids;

fn bench(c: &mut Criterion) {
    banner("Fig. 11 — comparison with the state of the art");
    let cora = cora_dataset(bench_scale()).expect("cora dataset");
    let voter = voter_dataset_of_size(bench_scale().voter_timing_records()).expect("voter dataset");
    let cora_panel = fig11::run_cora_on(&cora, bench_grid_scale()).expect("fig11 cora panel");
    let voter_panel = fig11::run_voter_on(&voter, bench_grid_scale()).expect("fig11 voter panel");
    println!("{}", cora_panel.to_table().render());
    println!("{}", voter_panel.to_table().render());
    if let Some(best) = cora_panel.best_fm_technique() {
        println!("best FM over Cora: {} = {:.3}", best.technique, best.fm());
    }
    if let Some(best) = voter_panel.best_fm_technique() {
        println!("best FM over NC Voter: {} = {:.3}\n", best.technique, best.fm());
    }

    // Measure a full reduced-grid sweep over a small voter subset.
    let small = voter_dataset_of_size(400).expect("small voter dataset");
    let grids = reduced_grids(&BlockingKey::ncvoter());
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("reduced_grid_sweep_voter400", |b| {
        b.iter(|| sweep_grids(black_box(&grids), black_box(&small)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
