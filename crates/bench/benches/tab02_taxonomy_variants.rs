//! E-TAB2: impact of taxonomy-tree variants on blocking quality (Table 2 /
//! Fig. 10).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::semantic::pattern::PatternSemanticFunction;
use sablock_core::semantic::SemanticFunction;
use sablock_core::taxonomy::bib::{bibliographic_taxonomy_variant, BibVariant};
use sablock_eval::experiments::{cora_dataset, tab02, Scale};

fn bench(c: &mut Criterion) {
    banner("Table 2 — impact of taxonomy variants over Cora");
    let dataset = cora_dataset(bench_scale()).expect("cora dataset");
    let repetitions = if bench_scale() == Scale::Paper { 5 } else { 3 };
    let output = tab02::run_on(&dataset, repetitions).expect("tab02 experiment");
    println!("{}", output.to_table().render());

    // Measure the semantic-interpretation pass under the full taxonomy.
    let tree = bibliographic_taxonomy_variant(BibVariant::Full);
    let zeta = PatternSemanticFunction::cora_default(&tree).unwrap();
    let quick = cora_dataset(Scale::Quick).expect("quick cora dataset");
    let mut group = c.benchmark_group("tab02");
    group.sample_size(30);
    group.bench_function("interpret_all_records", |b| {
        b.iter(|| {
            quick
                .records()
                .iter()
                .map(|r| zeta.interpret(black_box(r)).len())
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
