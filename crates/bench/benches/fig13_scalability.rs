//! E-FIG13: scalability of LSH / SA-LSH / semantic-function construction over
//! growing NC Voter subsets (Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::Path;

use sablock_bench::{banner, bench_scale};
use sablock_core::blocking::Blocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_eval::experiments::{fig13, voter_dataset_of_size, voter_salsh, Scale};
use sablock_eval::perf::{peak_rss_bytes, upsert_section, JsonValue};

/// Writes the ladder measurements to `BENCH_fig13.json` next to
/// `BENCH_NOTES.md`, so the perf trajectory is diffable across PRs. Paper
/// runs own the `"ladder"` section; quick smoke runs write `"ladder_quick"`
/// so they never clobber committed paper-scale numbers.
fn record_ladder(output: &fig13::Fig13Output) {
    let points: Vec<JsonValue> = output
        .points
        .iter()
        .map(|p| {
            JsonValue::Object(vec![
                ("records".into(), JsonValue::UInt(p.records as u64)), // sablock-lint: allow(lossy-id-cast): usize count → u64 widens losslessly
                ("lsh_blocking_s".into(), JsonValue::Float(p.lsh.blocking_time.as_secs_f64())),
                ("salsh_blocking_s".into(), JsonValue::Float(p.salsh.blocking_time.as_secs_f64())),
                ("sf_s".into(), JsonValue::Float(p.semantic_function_time.as_secs_f64())),
                ("lsh_candidate_pairs".into(), JsonValue::UInt(p.lsh.metrics.candidate_pairs)),
                ("salsh_candidate_pairs".into(), JsonValue::UInt(p.salsh.metrics.candidate_pairs)),
                ("pc_salsh".into(), JsonValue::Float(p.salsh.metrics.pc())),
                ("rr_salsh".into(), JsonValue::Float(p.salsh.metrics.rr())),
            ])
        })
        .collect();
    let section = JsonValue::Object(vec![
        ("points".into(), JsonValue::Array(points)),
        (
            "peak_rss_bytes".into(),
            peak_rss_bytes().map_or(JsonValue::Null, JsonValue::UInt),
        ),
    ]);
    let name = if bench_scale() == Scale::Paper { "ladder" } else { "ladder_quick" };
    // Anchor on the crate manifest: bench binaries run with the package
    // directory as CWD, and the report lives at the workspace root.
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig13.json"));
    match upsert_section(path, name, &section) {
        Ok(()) => println!("wrote the ladder measurements to {} (section \"{name}\")", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

fn bench(c: &mut Criterion) {
    banner("Fig. 13 — scalability over increasing dataset sizes");
    let output = fig13::run_sizes(&bench_scale().scalability_sizes()).expect("fig13 experiment");
    println!("{}", output.quality_table().render());
    println!("{}", output.time_table().render());
    record_ladder(&output);

    // Criterion throughput series over a few sizes (kept small so the
    // measured series is affordable; the printed table above carries the
    // full-scale numbers when SABLOCK_BENCH_SCALE=paper).
    let blocker = voter_salsh(9, 15, 12, SemanticMode::Or).unwrap();
    let mut group = c.benchmark_group("fig13/salsh_block");
    group.sample_size(10);
    for &size in &[1_000usize, 2_000, 4_000] {
        let dataset = voter_dataset_of_size(size).expect("voter dataset");
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &dataset, |b, ds| {
            b.iter(|| blocker.block(black_box(ds)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
