//! E-FIG13: scalability of LSH / SA-LSH / semantic-function construction over
//! growing NC Voter subsets (Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::blocking::Blocker;
use sablock_core::lsh::semantic_hash::SemanticMode;
use sablock_eval::experiments::{fig13, voter_dataset_of_size, voter_salsh};

fn bench(c: &mut Criterion) {
    banner("Fig. 13 — scalability over increasing dataset sizes");
    let output = fig13::run_sizes(&bench_scale().scalability_sizes()).expect("fig13 experiment");
    println!("{}", output.quality_table().render());
    println!("{}", output.time_table().render());

    // Criterion throughput series over a few sizes (kept small so the
    // measured series is affordable; the printed table above carries the
    // full-scale numbers when SABLOCK_BENCH_SCALE=paper).
    let blocker = voter_salsh(9, 15, 12, SemanticMode::Or).unwrap();
    let mut group = c.benchmark_group("fig13/salsh_block");
    group.sample_size(10);
    for &size in &[1_000usize, 2_000, 4_000] {
        let dataset = voter_dataset_of_size(size).expect("voter dataset");
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &dataset, |b, ds| {
            b.iter(|| blocker.block(black_box(ds)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
