//! E-FIG12: comparison of SA-LSH with meta-blocking (Fig. 12).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_baselines::key::BlockingKey;
use sablock_baselines::meta::{MetaBlocking, PruningAlgorithm, WeightingScheme};
use sablock_baselines::standard::TokenBlocking;
use sablock_core::blocking::Blocker;
use sablock_eval::experiments::{cora_dataset, fig12, voter_dataset_of_size};

fn bench(c: &mut Criterion) {
    banner("Fig. 12 — SA-LSH vs meta-blocking (PC / PQ* / FM*)");
    let cora = cora_dataset(bench_scale()).expect("cora dataset");
    let voter = voter_dataset_of_size(bench_scale().voter_timing_records()).expect("voter dataset");
    let cora_panel = fig12::run_cora_on(&cora).expect("fig12 cora panel");
    let voter_panel = fig12::run_voter_on(&voter).expect("fig12 voter panel");
    println!("{}", cora_panel.to_table().render());
    println!("{}", voter_panel.to_table().render());

    // Measure one full meta-blocking pass (token blocking + WEP/JS) on Cora.
    let meta = MetaBlocking::new(
        TokenBlocking::new(BlockingKey::cora()),
        WeightingScheme::Js,
        PruningAlgorithm::WeightedEdgePruning,
    );
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("meta_blocking_wep_js_cora", |b| {
        b.iter(|| meta.block(black_box(&cora)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
