//! E-FIG5: collision probability of w-way semantic hash functions (Fig. 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sablock_bench::banner;
use sablock_eval::experiments::fig05;

fn bench(c: &mut Criterion) {
    banner("Fig. 5 — w-way semantic hash collision probability");
    let output = fig05::run(15);
    println!("{}", output.to_table().render());

    c.bench_function("fig05/w_way_curves", |b| {
        b.iter(|| fig05::run(black_box(15)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
