//! E-FIG6: match-similarity distributions and (k, l) collision curves (Fig. 6).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use sablock_bench::{banner, bench_scale};
use sablock_core::minhash::shingle::RecordShingler;
use sablock_core::tuning::SimilarityDistribution;
use sablock_eval::experiments::{cora_dataset, fig06, Scale};

fn bench(c: &mut Criterion) {
    banner("Fig. 6 — similarity distributions and collision probabilities");
    let output = fig06::run(bench_scale()).expect("fig06 experiment");
    println!("{}", output.cora.distribution_table().render());
    println!("{}", output.cora.collision_table().render());
    println!("{}", output.ncvoter.distribution_table().render());
    println!("{}", output.ncvoter.collision_table().render());

    // Measure the heavy part: estimating the match-similarity distribution.
    let dataset = cora_dataset(Scale::Quick).expect("quick cora dataset");
    let shingler = RecordShingler::new(["title", "authors"], 4).unwrap();
    let mut group = c.benchmark_group("fig06");
    group.sample_size(20);
    group.bench_function("estimate_match_distribution", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            SimilarityDistribution::estimate_from_matches(black_box(&dataset), black_box(&shingler), 500, 20, &mut rng).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
