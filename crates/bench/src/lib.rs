//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper: it prints
//! the experiment's rows/series once (so `cargo bench` output contains the
//! reproduction data) and then registers a Criterion measurement of the
//! underlying computation.
//!
//! # The `SABLOCK_BENCH_SCALE` size ladder
//!
//! By default the experiments run at [`Scale::Quick`] so that
//! `cargo bench --workspace` finishes in minutes. Set the environment
//! variable `SABLOCK_BENCH_SCALE=paper` to run the paper-scale dataset sizes:
//! 1,879 Cora records, 30,000 NC Voter records for the quality experiments,
//! and the Fig. 13 scalability ladder that tops out at the full 292,892-record
//! voter roll (generated through the bounded-memory streaming path of
//! `NcVoterGenerator::stream`). Expect the full suite to take considerably
//! longer in that mode; `BENCH_NOTES.md` at the workspace root records
//! reference runtimes.
//!
//! ```
//! use sablock_bench::bench_scale;
//! use sablock_eval::experiments::Scale;
//!
//! // Without SABLOCK_BENCH_SCALE=paper in the environment, benches run quick…
//! std::env::remove_var("SABLOCK_BENCH_SCALE");
//! assert_eq!(bench_scale(), Scale::Quick);
//!
//! // …and the paper scale tops out at the full NC Voter roll of Fig. 13.
//! std::env::set_var("SABLOCK_BENCH_SCALE", "paper");
//! assert_eq!(bench_scale(), Scale::Paper);
//! assert_eq!(bench_scale().scalability_sizes().last(), Some(&292_892));
//! std::env::remove_var("SABLOCK_BENCH_SCALE");
//! ```

use sablock_eval::experiments::tab03::GridScale;
use sablock_eval::experiments::Scale;

/// The experiment scale selected via `SABLOCK_BENCH_SCALE` (default: quick).
pub fn bench_scale() -> Scale {
    match std::env::var("SABLOCK_BENCH_SCALE").as_deref() {
        Ok("paper") | Ok("PAPER") => Scale::Paper,
        _ => Scale::Quick,
    }
}

/// The parameter-grid scale selected via `SABLOCK_BENCH_GRIDS` (default:
/// reduced). Set `SABLOCK_BENCH_GRIDS=full` to sweep the full ~150-setting
/// survey grids as the paper does.
pub fn bench_grid_scale() -> GridScale {
    match std::env::var("SABLOCK_BENCH_GRIDS").as_deref() {
        Ok("full") | Ok("FULL") => GridScale::Full,
        _ => GridScale::Reduced,
    }
}

/// Prints a banner identifying the experiment and the active scale.
pub fn banner(experiment: &str) {
    println!("\n==============================================================");
    println!("{experiment} — scale: {:?} (set SABLOCK_BENCH_SCALE=paper for paper-scale runs)", bench_scale());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick_and_reduced() {
        // The environment variable is not set in the test environment.
        if std::env::var("SABLOCK_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), Scale::Quick);
        }
        if std::env::var("SABLOCK_BENCH_GRIDS").is_err() {
            assert!(matches!(bench_grid_scale(), GridScale::Reduced));
        }
    }
}
