//! Text normalisation applied before any similarity computation.
//!
//! The ER literature (and Christen's survey, which the paper follows for its
//! baseline comparison) normalises attribute values before blocking:
//! lower-casing, collapsing whitespace and stripping punctuation. The paper's
//! running example treats `"E. Fahlman and C. Lebiere"` and
//! `"E. Fahlman & C. Lebiere"` as highly similar, which only works after this
//! kind of canonicalisation.

/// Normalises a raw attribute value for comparison.
///
/// Steps, in order:
/// 1. Unicode characters are lower-cased.
/// 2. Any character that is not alphanumeric is treated as a separator.
/// 3. Runs of separators collapse to a single ASCII space.
/// 4. Leading/trailing separators are removed.
///
/// # Examples
/// ```
/// use sablock_textual::normalize;
/// assert_eq!(normalize("  The Cascade-Correlation   Learning! "), "the cascade correlation learning");
/// assert_eq!(normalize("E. Fahlman & C. Lebiere"), "e fahlman c lebiere");
/// assert_eq!(normalize(""), "");
/// ```
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut pending_space = false;
    for ch in raw.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for low in ch.to_lowercase() {
                out.push(low);
            }
        } else {
            pending_space = true;
        }
    }
    out
}

/// Normalises a value and strips inner spaces entirely.
///
/// Useful for building blocking keys where token order and spacing should not
/// matter at all (e.g. suffix-array blocking keys).
///
/// # Examples
/// ```
/// use sablock_textual::normalize::normalize_compact;
/// assert_eq!(normalize_compact("Wang, Qing"), "wangqing");
/// ```
pub fn normalize_compact(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        if ch.is_alphanumeric() {
            for low in ch.to_lowercase() {
                out.push(low);
            }
        }
    }
    out
}

/// Returns `true` when a raw attribute value should be treated as missing.
///
/// The paper's semantic functions are driven by *patterns of missing values*
/// (Table 1); "missing" in real data sets can be an empty string, pure
/// whitespace, or a conventional placeholder such as `"null"`, `"n/a"` or
/// `"unknown"`.
///
/// # Examples
/// ```
/// use sablock_textual::normalize::is_missing_text;
/// assert!(is_missing_text(""));
/// assert!(is_missing_text("  "));
/// assert!(is_missing_text("N/A"));
/// assert!(is_missing_text("null"));
/// assert!(!is_missing_text("TR"));
/// ```
pub fn is_missing_text(raw: &str) -> bool {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return true;
    }
    matches!(
        trimmed.to_ascii_lowercase().as_str(),
        "null" | "n/a" | "na" | "none" | "unknown" | "-" | "?"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses() {
        assert_eq!(normalize("Hello   WORLD"), "hello world");
    }

    #[test]
    fn strips_punctuation() {
        assert_eq!(normalize("cascade-correlation, learning."), "cascade correlation learning");
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   \t\n"), "");
        assert_eq!(normalize_compact("  .,! "), "");
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(normalize("Ärger MIT Straße"), "ärger mit straße");
    }

    #[test]
    fn compact_removes_spaces() {
        assert_eq!(normalize_compact("Qing  Wang"), "qingwang");
    }

    #[test]
    fn missing_placeholders_detected() {
        for v in ["", " ", "NULL", "n/a", "None", "-", "?"] {
            assert!(is_missing_text(v), "{v:?} should be missing");
        }
        for v in ["0", "TR", "Proceedings"] {
            assert!(!is_missing_text(v), "{v:?} should not be missing");
        }
    }

    #[test]
    fn normalization_is_idempotent() {
        let once = normalize("The  Cascade-Correlation Learning Architecture!");
        let twice = normalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn digits_are_kept() {
        assert_eq!(normalize("TR-95 (1995)"), "tr 95 1995");
    }
}
