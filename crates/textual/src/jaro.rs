//! Jaro and Jaro-Winkler string similarity.
//!
//! Jaro-Winkler is the first of the string similarity functions listed for
//! the baseline parameter sweeps in the paper (ASor, RSuA, StMT, StMNN) and is
//! the de-facto standard for comparing person names in record linkage.

/// Jaro similarity of two strings, in `[0, 1]`.
///
/// Matching characters must be within `max(|a|, |b|) / 2 - 1` positions of
/// each other; transposed matches count half.
///
/// # Examples
/// ```
/// use sablock_textual::jaro;
/// assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-5);
/// assert_eq!(jaro("same", "same"), 1.0);
/// assert_eq!(jaro("abc", ""), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| b_used[*j])
        .map(|(_, &c)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count();
    let m = m as f64;
    let t = transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus.
///
/// Uses the standard scaling factor `p = 0.1` and a maximum prefix length of
/// 4, and only applies the boost when the Jaro similarity exceeds 0.7 (the
/// "boost threshold" from Winkler's original formulation).
///
/// # Examples
/// ```
/// use sablock_textual::{jaro, jaro_winkler};
/// assert!(jaro_winkler("dwayne", "duane") >= jaro("dwayne", "duane"));
/// assert_eq!(jaro_winkler("x", "x"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4, 0.7)
}

/// Jaro-Winkler with explicit prefix scale, maximum prefix length and boost
/// threshold.
pub fn jaro_winkler_with(
    a: &str,
    b: &str,
    prefix_scale: f64,
    max_prefix: usize,
    boost_threshold: f64,
) -> f64 {
    let j = jaro(a, b);
    if j <= boost_threshold {
        return j;
    }
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * prefix_scale * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn classic_jaro_values() {
        assert!(close(jaro("martha", "marhta"), 0.9444));
        assert!(close(jaro("dixon", "dicksonx"), 0.7667));
        assert!(close(jaro("jellyfish", "smellyfish"), 0.8963));
    }

    #[test]
    fn classic_jaro_winkler_values() {
        assert!(close(jaro_winkler("martha", "marhta"), 0.9611));
        assert!(close(jaro_winkler("dixon", "dicksonx"), 0.8133));
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("wang", "wang"), 1.0);
    }

    #[test]
    fn completely_different() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn winkler_no_boost_below_threshold() {
        // Jaro of these is below 0.7, so Winkler must not change it.
        let j = jaro("abcdef", "abxxxx");
        assert!(j < 0.7);
        assert_eq!(jaro_winkler("abcdef", "abxxxx"), j);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("fahlman", "fehlman"), ("qing", "wang"), ("a", "ab")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn jaro_in_unit_interval(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaro_winkler_at_least_jaro(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        }

        #[test]
        fn jaro_symmetric(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn self_similarity_is_one(a in "[a-z]{1,10}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
