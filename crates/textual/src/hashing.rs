//! Small deterministic hashing utilities.
//!
//! The LSH pipeline hashes millions of q-gram shingles and bucket keys; the
//! default SipHash hasher of `std::collections::HashMap` is needlessly slow
//! and, more importantly, *not stable across processes*, which would make
//! minhash signatures irreproducible between runs. This module provides:
//!
//! * [`FxHasher64`] — an FxHash-style multiply-xor hasher (the algorithm used
//!   inside rustc), deterministic and fast for short keys,
//! * [`hash_str`] / [`hash_bytes`] — one-shot 64-bit hashes of strings/bytes,
//! * [`mix64`] — a Murmur3-style finaliser used to derive independent hash
//!   functions from a single base hash (the standard "one hash, many
//!   permutations" minhash construction),
//! * [`StableHashSet`] / [`StableHashMap`] — aliases for collections keyed by
//!   the deterministic hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style 64-bit hasher: fast, deterministic, not HashDoS-resistant.
///
/// Suitable for internal data structures keyed by shingles, concept
/// identifiers and bucket keys, where adversarial inputs are not a concern.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // A final mix hardens the otherwise weak low bits of Fx hashing so the
        // value can be truncated (e.g. into band buckets) without clustering.
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashSet` with a deterministic, fast hasher.
pub type StableHashSet<T> = HashSet<T, FxBuildHasher>;

/// A `HashMap` with a deterministic, fast hasher.
pub type StableHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Murmur3's 64-bit finaliser ("fmix64"); a strong bijective bit mixer.
///
/// Used to derive the family of minhash functions `h_i(x) = mix64(x ^ seed_i)`
/// from a single shingle hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// One-shot 64-bit hash of a byte slice.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher64::default();
    hasher.write(bytes);
    hasher.finish()
}

/// One-shot 64-bit hash of a string slice.
///
/// # Examples
/// ```
/// use sablock_textual::hash_str;
/// assert_eq!(hash_str("cascade"), hash_str("cascade"));
/// assert_ne!(hash_str("cascade"), hash_str("correlation"));
/// ```
#[inline]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Hashes any `Hash` value with the deterministic hasher.
#[inline]
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher64::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_str("entity resolution"), hash_str("entity resolution"));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_str("a"), hash_str("b"));
        assert_ne!(hash_str("ab"), hash_str("ba"));
        assert_ne!(hash_str(""), hash_str("\0"));
    }

    #[test]
    fn mix64_is_bijective_on_sample() {
        // A bijection never collides; sample a few thousand inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix64_changes_all_zero_input() {
        assert_eq!(mix64(0), 0); // fmix64 maps 0 to 0 by definition
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn stable_collections_work() {
        let mut set: StableHashSet<&str> = StableHashSet::default();
        set.insert("a");
        set.insert("a");
        assert_eq!(set.len(), 1);
        let mut map: StableHashMap<u64, u32> = StableHashMap::default();
        map.insert(7, 1);
        *map.entry(7).or_insert(0) += 1;
        assert_eq!(map[&7], 2);
    }

    #[test]
    fn hash_one_matches_between_equal_values() {
        #[derive(Hash)]
        struct Key(u32, &'static str);
        assert_eq!(hash_one(&Key(1, "x")), hash_one(&Key(1, "x")));
        assert_ne!(hash_one(&Key(1, "x")), hash_one(&Key(2, "x")));
    }
}
