//! Edit-distance based string similarity.
//!
//! Edit distance is one of the four string similarity functions swept for the
//! adaptive sorted-neighbourhood, robust suffix-array and string-map baselines
//! in the paper's Table 3 experiment.

/// Levenshtein distance (insertions, deletions, substitutions) between two
/// strings, computed over Unicode scalar values.
///
/// Runs in `O(|a| · |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
/// ```
/// use sablock_textual::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension to minimise memory.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance (restricted transpositions of adjacent
/// characters count as one edit).
///
/// # Examples
/// ```
/// use sablock_textual::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("ca", "ac"), 1);
/// assert_eq!(damerau_levenshtein("abcdef", "abcfed"), 2);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rolling rows are enough for the restricted transposition variant.
    let mut prev2: Vec<usize> = vec![0; cols];
    let mut prev: Vec<usize> = (0..cols).collect();
    let mut curr: Vec<usize> = vec![0; cols];
    for i in 1..=a.len() {
        curr[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in `[0, 1]`:
/// `1 - dist(a, b) / max(|a|, |b|)`.
///
/// Two empty strings have similarity `1.0` (zero edits are needed).
///
/// # Examples
/// ```
/// use sablock_textual::levenshtein_similarity;
/// assert_eq!(levenshtein_similarity("abcd", "abcd"), 1.0);
/// assert_eq!(levenshtein_similarity("abcd", ""), 0.0);
/// assert!((levenshtein_similarity("abcd", "abce") - 0.75).abs() < 1e-12);
/// ```
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Normalised Damerau-Levenshtein similarity in `[0, 1]`.
pub fn damerau_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "xy"), 2);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(damerau_similarity("", ""), 1.0);
    }

    #[test]
    fn transpositions_cheaper_in_damerau() {
        assert_eq!(levenshtein("wangqing", "wagnqing"), 2);
        assert_eq!(damerau_levenshtein("wangqing", "wagnqing"), 1);
    }

    #[test]
    fn unicode_counts_scalar_values() {
        assert_eq!(levenshtein("straße", "strasse"), 2);
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("cascade", "cascode"), ("paper", "taper"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn paper_typo_example() {
        // r1 "cascade-correlation" vs r4 "cascade corelation" differ by a
        // single deleted 'r' after normalisation; similarity should be high.
        let s = levenshtein_similarity("cascade correlation", "cascade corelation");
        assert!(s > 0.9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn distance_is_metric_like(a in "[a-d]{0,12}", b in "[a-d]{0,12}", c in "[a-d]{0,12}") {
            // symmetry
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            // identity of indiscernibles
            prop_assert_eq!(levenshtein(&a, &a) == 0, true);
            // triangle inequality
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn distance_bounded_by_longer_length(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
        }

        #[test]
        fn similarity_in_unit_interval(a in ".{0,16}", b in ".{0,16}") {
            let s = levenshtein_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
