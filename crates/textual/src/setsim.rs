//! Set-based similarity coefficients: Jaccard, Dice and overlap.
//!
//! The Jaccard coefficient is the backbone of the whole framework: textual
//! similarity is Jaccard over q-gram shingles (approximated by minhash), and
//! semantic similarity of concepts (Eq. 4) is Jaccard over leaf-concept sets.

use std::collections::HashSet;
use std::hash::{BuildHasher, Hash};

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two sets.
///
/// Returns `0.0` when both sets are empty (the convention used throughout the
/// blocking literature: two records with no shingles are *not* considered
/// identical, they are considered incomparable).
///
/// # Examples
/// ```
/// use std::collections::HashSet;
/// use sablock_textual::jaccard;
/// let a: HashSet<_> = ["a", "b", "c"].into_iter().collect();
/// let b: HashSet<_> = ["b", "c", "d"].into_iter().collect();
/// assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
/// ```
pub fn jaccard<T, S>(a: &HashSet<T, S>, b: &HashSet<T, S>) -> f64
where
    T: Eq + Hash,
    S: BuildHasher,
{
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard similarity of two `u64` sets (the hashed-shingle fast path).
pub fn jaccard_u64<S: BuildHasher>(a: &HashSet<u64, S>, b: &HashSet<u64, S>) -> f64 {
    jaccard(a, b)
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
pub fn dice<T, S>(a: &HashSet<T, S>, b: &HashSet<T, S>) -> f64
where
    T: Eq + Hash,
    S: BuildHasher,
{
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap<T, S>(a: &HashSet<T, S>, b: &HashSet<T, S>) -> f64
where
    T: Eq + Hash,
    S: BuildHasher,
{
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    inter as f64 / a.len().min(b.len()) as f64
}

/// Number of elements common to both sets, iterating over the smaller one.
pub fn intersection_size<T, S>(a: &HashSet<T, S>, b: &HashSet<T, S>) -> usize
where
    T: Eq + Hash,
    S: BuildHasher,
{
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|x| large.contains(*x)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_identical_sets() {
        let a = set(&["x", "y"]);
        assert_eq!(jaccard(&a, &a.clone()), 1.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
    }

    #[test]
    fn jaccard_empty_sets_are_zero() {
        let empty: HashSet<String> = HashSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
        assert_eq!(jaccard(&empty, &set(&["a"])), 0.0);
    }

    #[test]
    fn dice_geq_jaccard() {
        let a = set(&["a", "b", "c", "d"]);
        let b = set(&["c", "d", "e"]);
        assert!(dice(&a, &b) >= jaccard(&a, &b));
    }

    #[test]
    fn overlap_of_subset_is_one() {
        let a = set(&["a", "b"]);
        let b = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap(&a, &b), 1.0);
    }

    #[test]
    fn intersection_size_symmetric() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d", "e"]);
        assert_eq!(intersection_size(&a, &b), intersection_size(&b, &a));
        assert_eq!(intersection_size(&a, &b), 2);
    }

    #[test]
    fn jaccard_known_value() {
        // The paper's Example 4.4: |∩| = 5, |∪| = 6 → 5/6.
        let leaves_c0 = set(&["c3", "c4", "c5", "c7", "c8", "c9"]);
        let leaves_c1 = set(&["c3", "c4", "c5", "c7", "c8"]);
        assert!((jaccard(&leaves_c0, &leaves_c1) - 5.0 / 6.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn arb_set() -> impl Strategy<Value = HashSet<u32>> {
        proptest::collection::hash_set(0u32..50, 0..30)
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval(a in arb_set(), b in arb_set()) {
            let j = jaccard(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
        }

        #[test]
        fn jaccard_symmetric(a in arb_set(), b in arb_set()) {
            prop_assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn jaccard_self_is_one_unless_empty(a in arb_set()) {
            let expected = if a.is_empty() { 0.0 } else { 1.0 };
            prop_assert_eq!(jaccard(&a, &a.clone()), expected);
        }

        #[test]
        fn dice_bounds_jaccard(a in arb_set(), b in arb_set()) {
            // j <= d <= 2j/(1+j) relationship: d = 2j/(1+j)
            let j = jaccard(&a, &b);
            let d = dice(&a, &b);
            let expected = if j == 0.0 { 0.0 } else { 2.0 * j / (1.0 + j) };
            prop_assert!((d - expected).abs() < 1e-9);
        }

        #[test]
        fn overlap_at_least_jaccard(a in arb_set(), b in arb_set()) {
            prop_assert!(overlap(&a, &b) + 1e-12 >= jaccard(&a, &b));
        }
    }
}
