//! A uniform interface over the string similarity functions.
//!
//! The paper's baseline comparison (Section 6.3.4) sweeps each technique over
//! several string similarity functions ("Jaro-Winkler, bigram, edit-distance
//! and longest common substring", plus Jaccard and TF-IDF cosine for canopy
//! clustering). [`SimilarityFunction`] is the runtime-selectable enumeration
//! the parameter grids iterate over, and [`StringSimilarity`] is the trait the
//! blocking algorithms are generic over.

use crate::edit::{damerau_similarity, levenshtein_similarity};
use crate::jaro::{jaro, jaro_winkler};
use crate::lcs::{lcs_similarity, lcsq_similarity};
use crate::qgrams::{exact_value_similarity, qgram_similarity};
use crate::setsim::jaccard;
use crate::tokens::token_set;

/// A symmetric string similarity in `[0, 1]`.
pub trait StringSimilarity {
    /// Similarity of two raw strings; `1.0` means identical.
    fn similarity(&self, a: &str, b: &str) -> f64;

    /// The corresponding distance `1 - similarity`, as used in Section 3 of
    /// the paper (`δ(x, y) = 1 − sim(x, y)`).
    fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - self.similarity(a, b)
    }
}

impl<F> StringSimilarity for F
where
    F: Fn(&str, &str) -> f64,
{
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self(a, b)
    }
}

/// Runtime-selectable string similarity function.
///
/// These are the functions used in the paper's baseline parameter sweeps;
/// each variant documents which baselines use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityFunction {
    /// Exact equality of normalised values (Fig. 6 "Exact Value").
    ExactValue,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (ASor, RSuA, StMT, StMNN sweeps).
    JaroWinkler,
    /// Jaccard over character q-grams with the given q ("bigram" when q = 2).
    QGram(u8),
    /// Normalised Levenshtein edit-distance similarity.
    EditDistance,
    /// Normalised Damerau-Levenshtein similarity.
    DamerauEditDistance,
    /// Longest-common-substring similarity.
    LongestCommonSubstring,
    /// Longest-common-subsequence similarity.
    LongestCommonSubsequence,
    /// Jaccard over word tokens (CaTh/CaNN "Jaccard" variant).
    TokenJaccard,
}

impl SimilarityFunction {
    /// A short, stable identifier used in experiment reports.
    pub fn name(&self) -> String {
        match self {
            Self::ExactValue => "exact".to_string(),
            Self::Jaro => "jaro".to_string(),
            Self::JaroWinkler => "jaro-winkler".to_string(),
            Self::QGram(q) => format!("{q}-gram"),
            Self::EditDistance => "edit-distance".to_string(),
            Self::DamerauEditDistance => "damerau".to_string(),
            Self::LongestCommonSubstring => "lcs".to_string(),
            Self::LongestCommonSubsequence => "lcsq".to_string(),
            Self::TokenJaccard => "token-jaccard".to_string(),
        }
    }

    /// The set of functions the paper sweeps for key-comparison baselines
    /// (ASor, RSuA, StMT, StMNN): Jaro-Winkler, bigram, edit distance, LCS.
    pub fn survey_sweep() -> Vec<Self> {
        vec![
            Self::JaroWinkler,
            Self::QGram(2),
            Self::EditDistance,
            Self::LongestCommonSubstring,
        ]
    }
}

impl StringSimilarity for SimilarityFunction {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        match self {
            Self::ExactValue => exact_value_similarity(a, b),
            Self::Jaro => jaro(a, b),
            Self::JaroWinkler => jaro_winkler(a, b),
            Self::QGram(q) => qgram_similarity(a, b, usize::from(*q).max(1)),
            Self::EditDistance => levenshtein_similarity(a, b),
            Self::DamerauEditDistance => damerau_similarity(a, b),
            Self::LongestCommonSubstring => lcs_similarity(a, b),
            Self::LongestCommonSubsequence => lcsq_similarity(a, b),
            Self::TokenJaccard => {
                let sa = token_set(a);
                let sb = token_set(b);
                jaccard(&sa, &sb)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[SimilarityFunction] = &[
        SimilarityFunction::ExactValue,
        SimilarityFunction::Jaro,
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::QGram(2),
        SimilarityFunction::QGram(3),
        SimilarityFunction::EditDistance,
        SimilarityFunction::DamerauEditDistance,
        SimilarityFunction::LongestCommonSubstring,
        SimilarityFunction::LongestCommonSubsequence,
        SimilarityFunction::TokenJaccard,
    ];

    #[test]
    fn all_functions_bounded_and_symmetric() {
        let pairs = [
            ("The cascade-correlation learning architecture", "Cascade correlation learning architecture"),
            ("Qing Wang", "Wang Qing"),
            ("", "non-empty"),
            ("identical", "identical"),
        ];
        for f in ALL {
            for (a, b) in pairs {
                let s1 = f.similarity(a, b);
                let s2 = f.similarity(b, a);
                assert!((0.0..=1.0).contains(&s1), "{} out of range: {s1}", f.name());
                assert!((s1 - s2).abs() < 1e-9, "{} asymmetric", f.name());
            }
        }
    }

    #[test]
    fn identical_nonempty_values_score_one() {
        for f in ALL {
            let s = f.similarity("cascade correlation", "cascade correlation");
            assert!((s - 1.0).abs() < 1e-9, "{} on identical values: {s}", f.name());
        }
    }

    #[test]
    fn distance_complements_similarity() {
        let f = SimilarityFunction::JaroWinkler;
        let s = f.similarity("wang", "wong");
        assert!((f.distance("wang", "wong") - (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn closure_impl_works() {
        let f = |a: &str, b: &str| if a == b { 1.0 } else { 0.0 };
        assert_eq!(StringSimilarity::similarity(&f, "x", "x"), 1.0);
        assert_eq!(StringSimilarity::distance(&f, "x", "y"), 1.0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = ALL.iter().map(|f| f.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn survey_sweep_is_the_paper_list() {
        let sweep = SimilarityFunction::survey_sweep();
        assert_eq!(sweep.len(), 4);
        assert!(sweep.contains(&SimilarityFunction::JaroWinkler));
        assert!(sweep.contains(&SimilarityFunction::QGram(2)));
        assert!(sweep.contains(&SimilarityFunction::EditDistance));
        assert!(sweep.contains(&SimilarityFunction::LongestCommonSubstring));
    }
}
