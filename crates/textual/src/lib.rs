//! Textual similarity substrate for the SA-LSH blocking framework.
//!
//! The paper's blocking pipeline (Wang, Cui & Liang, *Semantic-Aware Blocking
//! for Entity Resolution*, TKDE 2016) measures textual similarity of records
//! through q-gram shingles compared under the Jaccard coefficient, while the
//! baseline techniques of the evaluation (Table 3) are parameterised by a
//! variety of classic string similarity functions (Jaro-Winkler, bigram,
//! edit distance, longest common substring, TF-IDF cosine).
//!
//! This crate implements all of that substrate from scratch:
//!
//! * [`mod@normalize`] — text canonicalisation used before any comparison,
//! * [`tokens`] — whitespace/word tokenisation,
//! * [`mod@qgrams`] — character q-gram extraction and shingle sets,
//! * [`setsim`] — Jaccard / Dice / overlap coefficients over sets,
//! * [`edit`] — Levenshtein and Damerau-Levenshtein distances,
//! * [`mod@jaro`] — Jaro and Jaro-Winkler similarity,
//! * [`lcs`] — longest common substring / subsequence similarity,
//! * [`tfidf`] — corpus vocabulary, IDF weighting and cosine similarity,
//! * [`phonetic`] — Soundex and a simplified NYSIIS encoding (used by the
//!   standard-blocking baseline to build phonetic blocking keys),
//! * [`hashing`] — a small, fast, deterministic 64-bit string hasher used for
//!   shingle universes and LSH bucket keys,
//! * [`similarity`] — a [`similarity::StringSimilarity`] trait plus a
//!   runtime-selectable [`similarity::SimilarityFunction`] enumeration, which
//!   is what the baseline parameter grids sweep over.
//!
//! All similarity functions return values in `[0, 1]`, where `1.0` means
//! "identical" — matching the convention `sim = 1 - distance` used in the
//! paper's Section 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod hashing;
pub mod jaro;
pub mod lcs;
pub mod normalize;
pub mod phonetic;
pub mod qgrams;
pub mod setsim;
pub mod similarity;
pub mod tfidf;
pub mod tokens;

pub use edit::{damerau_levenshtein, levenshtein, levenshtein_similarity};
pub use hashing::{hash_str, FxHasher64, StableHashSet};
pub use jaro::{jaro, jaro_winkler};
pub use lcs::{longest_common_subsequence, longest_common_substring, lcs_similarity};
pub use normalize::normalize;
pub use qgrams::{padded_qgrams, qgram_set, qgram_similarity, qgrams};
pub use setsim::{dice, jaccard, jaccard_u64, overlap};
pub use similarity::{SimilarityFunction, StringSimilarity};
pub use tfidf::{CosineSimilarity, TfIdfModel};
pub use tokens::{token_set, tokenize};
