//! Word tokenisation.
//!
//! Several baseline techniques (canopy clustering with TF-IDF, meta-blocking
//! with token blocking) operate on word tokens rather than character q-grams.

use crate::hashing::StableHashSet;
use crate::normalize::normalize;

/// Splits a raw value into normalised word tokens.
///
/// The value is [`normalize`]d first, then split on spaces; empty tokens are
/// dropped.
///
/// # Examples
/// ```
/// use sablock_textual::tokenize;
/// assert_eq!(tokenize("The Cascade-Correlation learning"), vec!["the", "cascade", "correlation", "learning"]);
/// assert!(tokenize("  ,.! ").is_empty());
/// ```
pub fn tokenize(raw: &str) -> Vec<String> {
    normalize(raw)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Returns the set of distinct normalised tokens of a value.
pub fn token_set(raw: &str) -> StableHashSet<String> {
    tokenize(raw).into_iter().collect()
}

/// Splits a value into tokens and keeps only tokens of at least `min_len`
/// characters. Useful for blocking keys that should ignore initials and stop
/// words like "a"/"of".
pub fn tokenize_min_len(raw: &str, min_len: usize) -> Vec<String> {
    tokenize(raw)
        .into_iter()
        .filter(|t| t.chars().count() >= min_len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_and_normalizes() {
        assert_eq!(tokenize("Fahlman, S., & Lebiere, C."), vec!["fahlman", "s", "lebiere", "c"]);
    }

    #[test]
    fn token_set_deduplicates() {
        let set = token_set("the cat and the hat");
        assert_eq!(set.len(), 4);
        assert!(set.contains("the"));
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(token_set("...").is_empty());
    }

    #[test]
    fn min_len_filters_initials() {
        assert_eq!(tokenize_min_len("Fahlman S E", 2), vec!["fahlman"]);
    }

    #[test]
    fn unicode_tokens() {
        assert_eq!(tokenize("Müller-Straße 42"), vec!["müller", "straße", "42"]);
    }
}
