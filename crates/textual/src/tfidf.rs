//! TF-IDF weighting and cosine similarity over token vectors.
//!
//! The canopy-clustering baselines (CaTh / CaNN) are evaluated in the paper
//! with both Jaccard and *TF-IDF cosine* similarity; this module provides the
//! corpus model those baselines need.

use std::collections::HashMap;

use crate::hashing::StableHashMap;
use crate::tokens::tokenize;

/// A sparse TF-IDF vector: token id → weight.
pub type SparseVector = StableHashMap<u32, f64>;

/// A TF-IDF model built over a corpus of documents (attribute values).
///
/// Tokens are interned to dense `u32` ids; document frequencies are counted
/// during [`TfIdfModel::fit`], and [`TfIdfModel::vectorize`] produces
/// L2-normalised TF-IDF vectors so that [`CosineSimilarity`] reduces to a dot
/// product.
#[derive(Debug, Clone, Default)]
pub struct TfIdfModel {
    token_ids: HashMap<String, u32>,
    document_frequency: Vec<u32>,
    documents: usize,
}

impl TfIdfModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from an iterator of documents.
    pub fn fit<I, S>(documents: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut model = Self::new();
        for doc in documents {
            model.add_document(doc.as_ref());
        }
        model
    }

    /// Adds one document's tokens to the corpus statistics.
    pub fn add_document(&mut self, doc: &str) {
        self.documents += 1;
        let mut seen = std::collections::HashSet::new();
        for token in tokenize(doc) {
            let next_id = u32::try_from(self.token_ids.len()).expect("token vocabulary exceeds the u32 id space");
            let id = *self.token_ids.entry(token).or_insert(next_id);
            if id as usize == self.document_frequency.len() {
                self.document_frequency.push(0);
            }
            if seen.insert(id) {
                self.document_frequency[id as usize] += 1;
            }
        }
    }

    /// Number of documents the model has seen.
    pub fn num_documents(&self) -> usize {
        self.documents
    }

    /// Number of distinct tokens in the vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.token_ids.len()
    }

    /// Inverse document frequency of a token id, with add-one smoothing.
    fn idf(&self, id: u32) -> f64 {
        let df = self.document_frequency[id as usize] as f64;
        ((1.0 + self.documents as f64) / (1.0 + df)).ln() + 1.0
    }

    /// Converts a document into an L2-normalised sparse TF-IDF vector.
    ///
    /// Tokens unseen during fitting are ignored (they carry no corpus weight).
    pub fn vectorize(&self, doc: &str) -> SparseVector {
        let mut counts: StableHashMap<u32, f64> = StableHashMap::default();
        for token in tokenize(doc) {
            if let Some(&id) = self.token_ids.get(&token) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut vector: SparseVector = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.idf(id)))
            .collect();
        let norm: f64 = vector.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for weight in vector.values_mut() {
                *weight /= norm;
            }
        }
        vector
    }

    /// Cosine similarity of two documents under this model, in `[0, 1]`.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vectorize(a);
        let vb = self.vectorize(b);
        dot(&va, &vb).clamp(0.0, 1.0)
    }
}

/// Dot product of two sparse vectors (assumed L2-normalised for cosine).
pub fn dot(a: &SparseVector, b: &SparseVector) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(id, wa)| large.get(id).map(|wb| wa * wb))
        .sum()
}

/// A reusable cosine-similarity comparer bound to a fitted [`TfIdfModel`].
#[derive(Debug, Clone)]
pub struct CosineSimilarity {
    model: TfIdfModel,
}

impl CosineSimilarity {
    /// Wraps a fitted model.
    pub fn new(model: TfIdfModel) -> Self {
        Self { model }
    }

    /// Fits a model over the given corpus and wraps it.
    pub fn fit<I, S>(documents: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::new(TfIdfModel::fit(documents))
    }

    /// Cosine similarity of two raw values.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.model.cosine(a, b)
    }

    /// Access to the underlying model.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "the cascade correlation learning architecture",
            "cascade correlation learning architecture",
            "a genetic cascade correlation learning algorithm",
            "controlled growth of cascade correlation nets",
            "efficient clustering of high dimensional data sets",
        ]
    }

    #[test]
    fn fit_counts_documents_and_vocabulary() {
        let model = TfIdfModel::fit(corpus());
        assert_eq!(model.num_documents(), 5);
        assert!(model.vocabulary_size() >= 15);
    }

    #[test]
    fn identical_documents_have_cosine_one() {
        let model = TfIdfModel::fit(corpus());
        let c = model.cosine("cascade correlation learning", "cascade correlation learning");
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_documents_have_cosine_zero() {
        let model = TfIdfModel::fit(corpus());
        assert_eq!(model.cosine("cascade correlation", "clustering data"), 0.0);
    }

    #[test]
    fn common_words_weigh_less_than_rare_words() {
        let model = TfIdfModel::fit(corpus());
        // "cascade" appears in 4/5 documents, "genetic" in 1/5: sharing only
        // the rare word should give higher similarity than sharing only the
        // common word, relative to otherwise-equal documents.
        let common = model.cosine("cascade algorithm", "cascade nets");
        let rare = model.cosine("genetic algorithm", "genetic nets");
        assert!(rare > common, "rare-word overlap {rare} should beat common-word overlap {common}");
    }

    #[test]
    fn unseen_tokens_are_ignored() {
        let model = TfIdfModel::fit(corpus());
        let v = model.vectorize("zzz qqq www");
        assert!(v.is_empty());
        assert_eq!(model.cosine("zzz", "zzz"), 0.0);
    }

    #[test]
    fn vectors_are_l2_normalized() {
        let model = TfIdfModel::fit(corpus());
        let v = model.vectorize("cascade correlation learning architecture");
        let norm: f64 = v.values().map(|w| w * w).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_symmetric_and_bounded() {
        let sim = CosineSimilarity::fit(corpus());
        for (a, b) in [
            ("cascade correlation", "correlation cascade nets"),
            ("learning architecture", "genetic learning"),
        ] {
            let s1 = sim.similarity(a, b);
            let s2 = sim.similarity(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn empty_corpus_and_empty_documents() {
        let model = TfIdfModel::fit(Vec::<&str>::new());
        assert_eq!(model.cosine("a", "a"), 0.0);
        let model = TfIdfModel::fit(corpus());
        assert_eq!(model.cosine("", ""), 0.0);
    }
}
