//! Phonetic encodings used to build blocking keys.
//!
//! The standard-blocking baseline (TBlo in Table 3) groups records by a
//! blocking key; for name attributes the survey the paper follows uses
//! phonetic encodings (Soundex and similar) so that spelling variants of the
//! same name land in the same block. We implement Soundex and a simplified
//! NYSIIS variant.

/// American Soundex encoding of a name: first letter plus three digits.
///
/// Non-alphabetic characters are ignored; empty input yields an empty code.
///
/// # Examples
/// ```
/// use sablock_textual::phonetic::soundex;
/// assert_eq!(soundex("Robert"), "R163");
/// assert_eq!(soundex("Rupert"), "R163");
/// assert_eq!(soundex("Ashcraft"), "A261");
/// assert_eq!(soundex("Tymczak"), "T522");
/// assert_eq!(soundex(""), "");
/// ```
pub fn soundex(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    if letters.is_empty() {
        return String::new();
    }

    fn code(c: char) -> Option<u8> {
        match c {
            'B' | 'F' | 'P' | 'V' => Some(1),
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => Some(2),
            'D' | 'T' => Some(3),
            'L' => Some(4),
            'M' | 'N' => Some(5),
            'R' => Some(6),
            _ => None, // vowels, H, W, Y
        }
    }

    let mut out = String::new();
    out.push(letters[0]);
    let mut last_code = code(letters[0]);
    for &c in &letters[1..] {
        let current = code(c);
        match current {
            Some(digit) => {
                // H and W do not reset the previous code; vowels do.
                if current != last_code {
                    out.push(char::from(b'0' + digit));
                    if out.len() == 4 {
                        break;
                    }
                }
                last_code = current;
            }
            None => {
                if c != 'H' && c != 'W' {
                    last_code = None;
                }
            }
        }
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// A simplified NYSIIS-style phonetic key: collapses common English phonetic
/// equivalences and removes vowels after the first character.
///
/// Less standard than full NYSIIS but stable, deterministic and good enough
/// for building alternative phonetic blocking keys in experiments.
///
/// # Examples
/// ```
/// use sablock_textual::phonetic::phonetic_key;
/// assert_eq!(phonetic_key("Philips"), phonetic_key("Filips"));
/// assert_eq!(phonetic_key("Knight"), phonetic_key("Night"));
/// assert_eq!(phonetic_key(""), "");
/// ```
pub fn phonetic_key(name: &str) -> String {
    let lower: String = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    if lower.is_empty() {
        return String::new();
    }
    // Common digraph and leading-silent-letter replacements.
    let mut s = lower
        .replace("ph", "f")
        .replace("gh", "g")
        .replace("ck", "k")
        .replace("sch", "s")
        .replace("sh", "s")
        .replace("th", "t");
    for prefix in ["kn", "gn", "pn", "wr"] {
        if let Some(rest) = s.strip_prefix(prefix) {
            s = format!("{}{}", &prefix[1..], rest);
        }
    }
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::new();
    out.push(chars[0]);
    let mut prev = chars[0];
    for &c in &chars[1..] {
        if matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y') {
            prev = c;
            continue;
        }
        if c != prev {
            out.push(c);
        }
        prev = c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_reference_values() {
        // Classic reference values from the Soundex specification.
        assert_eq!(soundex("Washington"), "W252");
        assert_eq!(soundex("Lee"), "L000");
        assert_eq!(soundex("Gutierrez"), "G362");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Jackson"), "J250");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Ashcraft"), "A261");
    }

    #[test]
    fn soundex_matches_spelling_variants() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(soundex("Robert"), soundex("Rupert"));
    }

    #[test]
    fn soundex_ignores_non_letters() {
        assert_eq!(soundex("O'Brien"), soundex("OBrien"));
        assert_eq!(soundex("  Wang  "), soundex("Wang"));
    }

    #[test]
    fn soundex_length_is_four_or_empty() {
        for name in ["A", "Ab", "Abcdefghij", "Lee", ""] {
            let code = soundex(name);
            assert!(code.is_empty() || code.len() == 4, "{name} -> {code}");
        }
    }

    #[test]
    fn phonetic_key_stability() {
        assert_eq!(phonetic_key("Wang"), phonetic_key("wang"));
        assert_eq!(phonetic_key("Schmidt"), phonetic_key("Shmidt"));
        assert!(!phonetic_key("Qing").is_empty());
    }

    #[test]
    fn different_names_usually_differ() {
        assert_ne!(soundex("Wang"), soundex("Liang"));
        assert_ne!(phonetic_key("Wang"), phonetic_key("Cui"));
    }
}
