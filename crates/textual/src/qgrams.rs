//! Character q-gram extraction and shingle sets.
//!
//! The paper's minhash pipeline (Section 5.1, step "Shingling") converts each
//! record into the set of character q-grams occurring in its selected
//! attribute values; the Jaccard coefficient over these sets is the textual
//! similarity that the LSH family approximates. The experiments sweep
//! `q ∈ {2, 3, 4}` (Fig. 6) and pick `q = 4` for Cora, `q = 2` for NC Voter.

use crate::hashing::{hash_str, StableHashSet};
use crate::normalize::normalize;
use crate::setsim::jaccard;

/// Extracts the (multiset-deduplicated) q-grams of a normalised string.
///
/// When the string is shorter than `q`, the whole string is returned as a
/// single gram so that very short values (initials, single tokens) still
/// produce a non-empty shingle set.
///
/// # Panics
/// Panics if `q == 0`.
///
/// # Examples
/// ```
/// use sablock_textual::qgrams;
/// assert_eq!(qgrams("abcd", 2), vec!["ab", "bc", "cd"]);
/// assert_eq!(qgrams("ab", 3), vec!["ab"]);
/// assert!(qgrams("", 2).is_empty());
/// ```
pub fn qgrams(text: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q-gram size must be positive");
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() < q {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - q)
        .map(|i| chars[i..i + q].iter().collect())
        .collect()
}

/// Extracts padded q-grams: the string is surrounded by `q - 1` copies of a
/// padding character (`#` at the start, `$` at the end) before extraction.
///
/// Padded q-grams give extra weight to the beginning and end of values and
/// are the variant commonly used by q-gram indexing baselines.
///
/// # Examples
/// ```
/// use sablock_textual::padded_qgrams;
/// assert_eq!(padded_qgrams("ab", 2), vec!["#a", "ab", "b$"]);
/// ```
pub fn padded_qgrams(text: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q-gram size must be positive");
    if text.is_empty() {
        return Vec::new();
    }
    if q == 1 {
        return qgrams(text, 1);
    }
    let mut padded = String::with_capacity(text.len() + 2 * (q - 1));
    for _ in 0..q - 1 {
        padded.push('#');
    }
    padded.push_str(text);
    for _ in 0..q - 1 {
        padded.push('$');
    }
    qgrams(&padded, q)
}

/// Returns the set of distinct q-grams of a *raw* (un-normalised) value.
///
/// The value is normalised first so that q-grams are case- and
/// punctuation-insensitive.
pub fn qgram_set(raw: &str, q: usize) -> StableHashSet<String> {
    qgrams(&normalize(raw), q).into_iter().collect()
}

/// Returns the set of distinct *hashed* q-grams of a raw value.
///
/// Hashing the grams to `u64` keeps shingle sets compact (8 bytes per gram)
/// and is what the minhash implementation consumes.
pub fn hashed_qgram_set(raw: &str, q: usize) -> StableHashSet<u64> {
    qgrams(&normalize(raw), q)
        .into_iter()
        .map(|g| hash_str(&g))
        .collect()
}

/// Jaccard similarity of the q-gram sets of two raw values.
///
/// This is the "textual similarity" `sim_J` of the paper when records are
/// shingled with character q-grams.
///
/// # Examples
/// ```
/// use sablock_textual::qgram_similarity;
/// let s = qgram_similarity("cascade correlation", "cascade corelation", 2);
/// assert!(s > 0.7 && s < 1.0);
/// assert_eq!(qgram_similarity("abc", "abc", 2), 1.0);
/// assert_eq!(qgram_similarity("abc", "xyz", 2), 0.0);
/// ```
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    let sa = qgram_set(a, q);
    let sb = qgram_set(b, q);
    jaccard(&sa, &sb)
}

/// Jaccard similarity over *exact* normalised values (q = ∞ in Fig. 6's
/// "Exact Value" series): 1.0 if the normalised values are equal and both
/// non-empty, otherwise 0.0.
pub fn exact_value_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    if na == nb {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_bigrams() {
        assert_eq!(qgrams("wang", 2), vec!["wa", "an", "ng"]);
    }

    #[test]
    fn qgram_count_formula() {
        // |qgrams(s, q)| == len - q + 1 for len >= q
        for (s, q) in [("abcdefgh", 2), ("abcdefgh", 3), ("abcdefgh", 4)] {
            assert_eq!(qgrams(s, q).len(), s.len() - q + 1);
        }
    }

    #[test]
    fn short_string_is_single_gram() {
        assert_eq!(qgrams("ab", 4), vec!["ab"]);
        assert_eq!(qgrams("a", 2), vec!["a"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }

    #[test]
    fn padded_grams_mark_ends() {
        let grams = padded_qgrams("qing", 3);
        assert!(grams.contains(&"##q".to_string()));
        assert!(grams.contains(&"ng$".to_string()));
        assert!(grams.contains(&"g$$".to_string()));
    }

    #[test]
    fn padded_unigram_equals_plain() {
        assert_eq!(padded_qgrams("abc", 1), qgrams("abc", 1));
    }

    #[test]
    fn qgram_set_is_case_insensitive() {
        assert_eq!(qgram_set("Wang Qing", 2), qgram_set("wang qing", 2));
    }

    #[test]
    fn hashed_set_same_cardinality() {
        let plain = qgram_set("cascade correlation", 3);
        let hashed = hashed_qgram_set("cascade correlation", 3);
        assert_eq!(plain.len(), hashed.len());
    }

    #[test]
    fn similarity_symmetric_and_bounded() {
        let pairs = [
            ("cascade correlation", "cascade corelation"),
            ("qing wang", "wang qing"),
            ("", "abc"),
            ("", ""),
        ];
        for (a, b) in pairs {
            let s1 = qgram_similarity(a, b, 2);
            let s2 = qgram_similarity(b, a, 2);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn transposed_names_highly_similar_under_bigrams() {
        // The motivating example of the paper: standard blocking keys cannot
        // match "Qing Wang" and "Wang Qing", but their bigram sets overlap a lot.
        let s = qgram_similarity("Qing Wang", "Wang Qing", 2);
        assert!(s > 0.5, "bigram similarity of transposed names should be high, got {s}");
    }

    #[test]
    fn exact_value_similarity_binary() {
        assert_eq!(exact_value_similarity("The Title", "the   title!"), 1.0);
        assert_eq!(exact_value_similarity("a", "b"), 0.0);
        assert_eq!(exact_value_similarity("", ""), 0.0);
    }
}
