//! Longest common substring / subsequence similarity.
//!
//! "Longest common substring" is the fourth string similarity function listed
//! in the paper's baseline parameter sweeps (Section 6.3.4).

/// Length of the longest common *substring* (contiguous) of two strings.
///
/// # Examples
/// ```
/// use sablock_textual::longest_common_substring;
/// assert_eq!(longest_common_substring("cascade", "arcade"), 4); // "cade"
/// assert_eq!(longest_common_substring("abc", "xyz"), 0);
/// ```
pub fn longest_common_substring(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    let mut best = 0;
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            if a[i - 1] == b[j - 1] {
                curr[j] = prev[j - 1] + 1;
                best = best.max(curr[j]);
            } else {
                curr[j] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    best
}

/// Length of the longest common *subsequence* (not necessarily contiguous).
///
/// # Examples
/// ```
/// use sablock_textual::longest_common_subsequence;
/// assert_eq!(longest_common_subsequence("abcde", "ace"), 3);
/// assert_eq!(longest_common_subsequence("abc", ""), 0);
/// ```
pub fn longest_common_subsequence(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            curr[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(curr[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Longest-common-substring similarity in `[0, 1]`:
/// `2 · lcs(a, b) / (|a| + |b|)`, following the repeated-LCS similarity used
/// in the record-linkage literature (single-iteration variant).
///
/// Two empty strings have similarity `0.0` (nothing in common to speak of).
///
/// # Examples
/// ```
/// use sablock_textual::lcs_similarity;
/// assert_eq!(lcs_similarity("abcd", "abcd"), 1.0);
/// assert_eq!(lcs_similarity("abcd", "efgh"), 0.0);
/// ```
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let len_a = a.chars().count();
    let len_b = b.chars().count();
    if len_a + len_b == 0 {
        return 0.0;
    }
    2.0 * longest_common_substring(a, b) as f64 / (len_a + len_b) as f64
}

/// Longest-common-subsequence similarity in `[0, 1]`.
pub fn lcsq_similarity(a: &str, b: &str) -> f64 {
    let len_a = a.chars().count();
    let len_b = b.chars().count();
    if len_a + len_b == 0 {
        return 0.0;
    }
    2.0 * longest_common_subsequence(a, b) as f64 / (len_a + len_b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_basic() {
        assert_eq!(longest_common_substring("machine learning", "deep learning"), 9); // " learning"
        assert_eq!(longest_common_substring("aaa", "aa"), 2);
    }

    #[test]
    fn subsequence_basic() {
        assert_eq!(longest_common_subsequence("AGGTAB", "GXTXAYB"), 4);
        assert_eq!(longest_common_subsequence("abc", "abc"), 3);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(longest_common_substring("", "abc"), 0);
        assert_eq!(longest_common_subsequence("", ""), 0);
        assert_eq!(lcs_similarity("", ""), 0.0);
        assert_eq!(lcsq_similarity("", ""), 0.0);
    }

    #[test]
    fn subsequence_at_least_substring() {
        for (a, b) in [("cascade", "arcade"), ("entity", "identity"), ("abc", "cba")] {
            assert!(longest_common_subsequence(a, b) >= longest_common_substring(a, b));
        }
    }

    #[test]
    fn similarity_bounds_and_symmetry() {
        for (a, b) in [("qing wang", "wang qing"), ("tr", "technical report"), ("x", "")] {
            let s = lcs_similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
            assert!((s - lcs_similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn unicode_handling() {
        assert_eq!(longest_common_substring("straße", "strasse"), 4); // "stra"
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lcs_bounded_by_shorter(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let bound = a.chars().count().min(b.chars().count());
            prop_assert!(longest_common_substring(&a, &b) <= bound);
            prop_assert!(longest_common_subsequence(&a, &b) <= bound);
        }

        #[test]
        fn lcs_symmetric(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            prop_assert_eq!(longest_common_substring(&a, &b), longest_common_substring(&b, &a));
            prop_assert_eq!(longest_common_subsequence(&a, &b), longest_common_subsequence(&b, &a));
        }

        #[test]
        fn self_similarity_is_one(a in "[a-z]{1,12}") {
            prop_assert_eq!(lcs_similarity(&a, &a), 1.0);
            prop_assert_eq!(lcsq_similarity(&a, &a), 1.0);
        }
    }
}
