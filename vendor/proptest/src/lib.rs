//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the subset of the proptest 1.x API the sablock test suite
//! uses: the [`proptest!`] macro with `#![proptest_config(...)]`, the
//! [`Strategy`] trait with [`Strategy::prop_map`], numeric range strategies,
//! [`any`], [`collection::vec`] / [`collection::hash_set`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics differ from real proptest in one important way: there is **no
//! shrinking**. A failing case panics immediately with the case number; the
//! whole run is deterministic (the per-test RNG is seeded from the test's
//! name), so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
mod pattern;

/// Generates values of an output type from a seeded RNG.
///
/// This is the no-shrinking analogue of proptest's `Strategy`: `generate`
/// plays the role of `new_tree(..).current()`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

impl Strategy for &str {
    type Value = String;

    /// String-pattern strategy: interprets the pattern as a small regex
    /// subset (character classes, `.`, literals, `{m,n}` / `*` / `+` / `?`
    /// quantifiers) and generates a random matching string, like proptest's
    /// regex string strategies.
    fn generate(&self, rng: &mut StdRng) -> String {
        pattern::generate_matching(self, rng)
    }
}

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uniform_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                let word: u64 = rng.gen();
                word as $t
            }
        }
    )*};
}

arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Real proptest generates the full bit-space including NaN; the test
        // suite only relies on "some spread of finite values".
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for one property test (seeded from the test
/// name, overridable with the `PROPTEST_SEED` environment variable).
#[doc(hidden)]
pub fn test_rng(test_name: &str) -> StdRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name: stable across runs, platforms and compilers.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` block
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest `{}`: case {}/{} failed (set PROPTEST_SEED to override the deterministic seed)",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

// Lets `proptest::...` paths inside this crate's own tests resolve the same
// way they do in downstream crates.
#[cfg(test)]
use crate as proptest;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = test_rng("ranges_generate_in_bounds");
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = test_rng("prop_map_composes");
        let strategy = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u32> = (0..10).map(|_| (0u32..1000).generate(&mut test_rng("same"))).collect();
        let b: Vec<u32> = (0..10).map(|_| (0u32..1000).generate(&mut test_rng("same"))).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u8..10, y in proptest::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!y.is_empty() && y.len() < 4);
        }
    }
}
