//! Random string generation from a small regex subset, backing the
//! `&str`-as-strategy feature of real proptest.
//!
//! Supported syntax: literal characters, `.` (printable ASCII), character
//! classes `[abc]` / `[a-z0-9_]`, and the quantifiers `{n}`, `{m,n}`, `{m,}`
//! (capped), `*`, `+`, `?`. Anything fancier (alternation, groups, anchors)
//! panics loudly rather than generating wrong strings silently.

use rand::rngs::StdRng;
use rand::Rng;

/// One parsed pattern element: the set of characters it can produce.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// The cap applied to open-ended quantifiers (`*`, `+`, `{m,}`).
const OPEN_REPEAT_CAP: usize = 16;

/// Generates one random string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
                let class: Vec<char> = chars[i + 1..i + close].to_vec();
                i += close + 1;
                expand_class(&class, pattern)
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c @ ('(' | ')' | '|' | '^' | '$') => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?} (vendored proptest supports only classes, '.', literals and quantifiers)")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty character class in pattern {pattern:?}");
    assert!(class[0] != '^', "negated classes are unsupported in pattern {pattern:?}");
    let mut choices = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            assert!(class[i] <= class[i + 2], "inverted range in class of pattern {pattern:?}");
            for c in class[i]..=class[i + 2] {
                choices.push(c);
            }
            i += 3;
        } else {
            choices.push(class[i]);
            i += 1;
        }
    }
    choices
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if *i >= chars.len() {
        return (1, 1);
    }
    match chars[*i] {
        '*' => {
            *i += 1;
            (0, OPEN_REPEAT_CAP)
        }
        '+' => {
            *i += 1;
            (1, OPEN_REPEAT_CAP)
        }
        '?' => {
            *i += 1;
            (0, 1)
        }
        '{' => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            let parse_num = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier bound {s:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse_num(&body);
                    (n, n)
                }
                Some((lo, "")) => {
                    let m = parse_num(lo);
                    (m, m + OPEN_REPEAT_CAP)
                }
                Some((lo, hi)) => (parse_num(lo), parse_num(hi)),
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn class_with_bounds() {
        let mut rng = test_rng("class_with_bounds");
        for _ in 0..200 {
            let s = generate_matching("[a-d]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }
    }

    #[test]
    fn nonempty_lower_bound_is_respected() {
        let mut rng = test_rng("nonempty_lower_bound_is_respected");
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()));
        }
    }

    #[test]
    fn dot_generates_printable_ascii() {
        let mut rng = test_rng("dot_generates_printable_ascii");
        for _ in 0..100 {
            let s = generate_matching(".{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_quantifiers_and_escapes() {
        let mut rng = test_rng("literals_quantifiers_and_escapes");
        let s = generate_matching("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        let t = generate_matching(r"\.x+", &mut rng);
        assert!(t.starts_with('.') && t[1..].chars().all(|c| c == 'x'));
    }
}
