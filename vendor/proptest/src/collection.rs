//! Collection strategies: random-length vectors and hash sets.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// An inclusive size bound for collection strategies, mirroring proptest's
/// `SizeRange`. Built from `usize`, `a..b` or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(!range.is_empty(), "collection strategy needs a non-empty size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(!range.is_empty(), "collection strategy needs a non-empty size range");
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.len.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors whose length lies in `len`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from a range.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let target = self.size.draw(rng);
        let mut set = HashSet::with_capacity(target);
        // Bounded retries: with a narrow element domain the target size may be
        // unreachable, in which case the set is simply smaller.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A strategy producing hash sets whose size aims for the `size` range.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::test_rng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = test_rng("vec_lengths_stay_in_range");
        let strategy = vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn hash_sets_respect_target() {
        let mut rng = test_rng("hash_sets_respect_target");
        let strategy = hash_set(0u32..1000, 3..8);
        for _ in 0..100 {
            let s = strategy.generate(&mut rng);
            assert!(s.len() < 8);
        }
    }
}
