//! A minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the subset of the criterion 0.5 API that the sablock bench
//! harness uses: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the median, minimum and mean
//! per-iteration wall-clock time. There is no statistical outlier analysis,
//! plotting or HTML report — the goal is that `cargo bench` produces usable
//! relative numbers and, above all, that every bench target compiles and runs
//! in CI via `cargo bench --no-run`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }

    /// Accepted for API compatibility; command-line configuration is ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time; accepted for API compatibility and ignored.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Records the group throughput; accepted for API compatibility. The
    /// per-element rate is not currently reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group. (No summary output beyond the per-bench lines.)
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Declared throughput of a benchmark (elements or bytes per iteration).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, running it enough times per sample to be timeable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: grow the per-sample iteration count until
        // one sample takes at least ~1 ms, so Instant resolution is adequate.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        let samples = self.samples.capacity();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<50} median {:>12}  min {:>12}  mean {:>12}  ({} samples x {} iters)",
        format_time(median),
        format_time(min),
        format_time(mean),
        per_iter.len(),
        bencher.iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
