//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A deterministic 64-bit generator (SplitMix64).
///
/// Unlike upstream rand's ChaCha-based `StdRng`, this produces a different
/// stream — but it is equally deterministic for a fixed seed, which is the
/// only property the workspace relies on.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up scramble so that small seeds (0, 1, 2, ...) do not start
        // from visibly correlated states.
        let mut rng = StdRng { state: seed ^ 0x6A09_E667_F3BC_C909 };
        let _ = rng.next_u64();
        rng
    }
}
