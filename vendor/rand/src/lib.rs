//! A minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides exactly the subset of the rand 0.8 API that the sablock
//! workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer ranges,
//!   half-open float ranges) and [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — not cryptographic,
//! but statistically solid, fast and fully reproducible from a `u64` seed,
//! which is all the synthetic data generators and LSH samplers need. Note the
//! stream differs from upstream rand's ChaCha-based `StdRng`; the workspace
//! only relies on determinism for a fixed seed, never on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. (Subset of `rand_core::RngCore`.)
pub trait RngCore {
    /// Returns the next random `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f32::sample(rng) * (end - start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits for p = 0.3");
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
